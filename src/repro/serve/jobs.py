"""Job execution for the serve path: compile through the artifact
store, simulate, summarize.

A **job** (validated by :func:`repro.serve.protocol.validate_job`)
names a program — a registry workload or a fuzz recipe — plus a
strategy, partitioner, backend, optional per-instance global ``writes``
and a ``reads`` list.  This module turns jobs into results:

* :func:`job_compile_key` — the canonical coalescing key: jobs with
  equal keys compile to the *same* machine program, so the service
  groups them and runs the whole group through one
  :func:`~repro.evaluation.parallel.batch_map` call on the lockstep
  ``batch`` backend (bit-identical to per-job scalar runs by that
  backend's tested contract);
* :func:`execute_group` — the picklable worker entry point
  :func:`~repro.evaluation.parallel.supervised_map` dispatches: one
  compile (through the per-process
  :func:`~repro.serve.store.process_compile_cache`) plus one batched
  simulation per group, returning one JSON-able result dict per job;
* :func:`execute_job` — the single-job convenience the e2e tests and
  benchmarks use as the "direct CLI run" reference.

Results are bit-identical to direct runs because both paths share
every stage: the same deterministic compile (cached or not — cache
hits return the identical program), the same simulator contract across
backends, and the same digest over the same final-state projection.
"""

import hashlib
import json
import time

from repro.evaluation.runner import _compile_cached
from repro.serve.store import canonical_key, process_compile_cache

#: fields of a job that determine the compiled program (everything but
#: the backend, the per-instance inputs, and the response shaping)
_COMPILE_FIELDS = ("kind", "workload", "recipe", "strategy", "partitioner")


def job_compile_key(job):
    """Canonical string key of the compile a job needs.

    Jobs sharing this key — same program source, strategy, and
    partitioner — compile to one machine program and may execute as
    lanes of one lockstep batch, whatever backends they each asked for
    (all backends are bit-identical, a fuzz-oracle invariant).
    """
    return canonical_key(
        {field: job.get(field) for field in _COMPILE_FIELDS}
    )


class _JobSource:
    """Adapter giving a job the ``.build()`` shape
    :func:`~repro.evaluation.runner._compile_cached` expects.

    *store* (an :class:`~repro.serve.store.ArtifactStore`, usually the
    compile cache's) resolves ``{"ref": digest}`` recipes the
    dispatcher lightened with :func:`lighten_group`.
    """

    def __init__(self, job, store=None):
        self._job = job
        self._store = store

    def build(self):
        if self._job["kind"] == "run":
            from repro.workloads.registry import get_workload

            return get_workload(self._job["workload"]).build()
        from repro.fuzz.generator import Recipe, build_module, generate_recipe

        data = self._job["recipe"]
        if "ref" in data:
            # hash-first dispatch: the recipe body lives in the artifact
            # store; rehydrate through this process's handle
            resolved = (
                self._store.get_blob(data["ref"])
                if self._store is not None else None
            )
            if resolved is None:
                raise RuntimeError(
                    "recipe blob %s not found in artifact store"
                    % data["ref"]
                )
            data = resolved
        if "body" in data:
            recipe = Recipe.from_dict(data)
        else:
            # generator spec: {"seed": S[, "max_statements": K]} asks for
            # the deterministic seeded recipe instead of shipping one
            recipe = generate_recipe(
                data["seed"], max_statements=data.get("max_statements", 6)
            )
        return build_module(recipe)


def compile_for_job(job, cache):
    """Compile the program a job names, reading through *cache*.

    Handles the profile-driven strategies the same way the evaluation
    runner does: the single-bank baseline is compiled (cached) and
    simulated once to collect block counts, which then key the profiled
    compile.  Returns ``(compiled, source)`` where *source* says where
    the final compile came from (``memory``/``store``/``compile``).
    """
    from repro.partition.strategies import Strategy
    from repro.sim.fastsim import make_simulator
    from repro.sim.tracing import collect_block_counts

    source = _JobSource(job, store=getattr(cache, "store", None))
    strategy = Strategy[job["strategy"]]
    partitioner = job["partitioner"]
    profile_counts = None
    if strategy.needs_profile:
        baseline = _compile_cached(
            source, Strategy.SINGLE_BANK, None, cache, partitioner=partitioner
        )
        result = make_simulator(baseline.program).run()
        profile_counts = collect_block_counts(baseline.program, result)
    compiled = _compile_cached(
        source, strategy, profile_counts, cache, partitioner=partitioner
    )
    return compiled, getattr(cache, "last_source", None)


#: the per-instance fields a non-head group member still needs after
#: lightening (everything compile-relevant lives on the head job)
_MEMBER_FIELDS = ("id", "writes", "reads", "backend")


def lighten_group(jobs, store=None):
    """Strip redundant payload from a coalesced group before it is
    pickled to a worker.

    A group shares one :func:`job_compile_key`, so only ``jobs[0]`` is
    ever compiled: members past the head keep just their per-instance
    fields (``id``/``writes``/``reads``/``backend``).  When *store* is
    given, an inline fuzz recipe body on the head job is parked there
    as a content-addressed blob and replaced by ``{"ref": digest}`` —
    the worker rehydrates through its own per-process store handle
    (:class:`_JobSource`).  Generator specs (``{"seed": ...}``) are
    already smaller than a digest and stay inline.  Returns new job
    dicts; the inputs are untouched.
    """
    head = dict(jobs[0])
    recipe = head.get("recipe")
    if store is not None and isinstance(recipe, dict) and "body" in recipe:
        head["recipe"] = {"ref": store.put_blob(recipe)}
    return [head] + [
        {field: job[field] for field in _MEMBER_FIELDS if field in job}
        for job in jobs[1:]
    ]


def state_digest(outputs):
    """Deterministic SHA-256 over a ``{global: final value(s)}`` mapping
    — the bit-identity projection results are compared on."""
    return hashlib.sha256(
        json.dumps(outputs, sort_keys=True, default=repr).encode()
    ).hexdigest()


def _writes_problem(writes, sizes):
    """Why this ``writes`` mapping cannot be applied to the program
    (None when it can) — mirrors ``Simulator.write_global`` validation."""
    for name, values in writes.items():
        if name not in sizes:
            return "job writes unknown global %r; program has %s" % (
                name, ", ".join(sorted(sizes)),
            )
        if isinstance(values, (list, tuple)) and len(values) > sizes[name]:
            return "%d values for %s[%d]" % (len(values), name, sizes[name])
    return None


def _result_for(job, outcome, global_names, obs):
    """One terminal result/error dict for *job* from its
    :class:`~repro.evaluation.parallel.BatchTaskResult`."""
    from repro.sim.errors import categorize

    if outcome.error is not None:
        error = outcome.error
        fault = {
            "kind": type(error).__name__,
            "message": str(error),
            "category": categorize(error) or "internal",
        }
        for attribute in ("pc", "cycle", "backend", "seed"):
            value = getattr(error, attribute, None)
            if value is not None:
                fault[attribute] = value
        return {"id": job.get("id"), "ok": False, "fault": fault, "obs": obs}
    finals = {name: outcome.outputs[name] for name in global_names}
    unknown = [name for name in job["reads"] if name not in finals]
    if unknown:
        return {
            "id": job.get("id"),
            "ok": False,
            "fault": {
                "kind": "UnknownGlobal",
                "message": "job reads unknown global(s) %s; program has %s"
                % (", ".join(unknown), ", ".join(global_names)),
                "category": "program",
            },
            "obs": obs,
        }
    return {
        "id": job.get("id"),
        "ok": True,
        "cycles": outcome.result.cycles,
        "operations": outcome.result.operations,
        "digest": state_digest(finals),
        "outputs": {name: finals[name] for name in job["reads"]},
        "obs": obs,
    }


def execute_group(jobs, cache_dir=None, lanes=64):
    """Run a group of jobs sharing one :func:`job_compile_key`.

    The worker entry point behind the service (top-level and picklable
    so :func:`~repro.evaluation.parallel.supervised_map` can dispatch it
    to its supervised pool).  One compile through the per-process
    artifact-store cache, then one :func:`~repro.evaluation.parallel.batch_map`
    call: groups of two or more coalesce onto the lockstep ``batch``
    backend regardless of each job's requested backend (bit-identical
    by contract); singletons run on exactly the backend they asked for.

    Per-job simulator faults come back as ``ok: false`` result dicts
    (the error taxonomy rides in ``fault``) — they never raise, so one
    faulting lane cannot take down its group-mates.  Returns results in
    job order, JSON-able throughout.
    """
    from repro.evaluation.parallel import batch_map

    from repro.sim.errors import categorize

    cache = process_compile_cache(cache_dir)
    compile_start = time.perf_counter()
    try:
        compiled, cache_source = compile_for_job(jobs[0], cache)
    except Exception as error:
        # A compile failure is shared by the whole group (they asked for
        # the same program) but must not poison unrelated groups in the
        # same dispatch round: fault every member and return normally.
        fault = {
            "kind": type(error).__name__,
            "message": str(error),
            "category": categorize(error) or "internal",
        }
        return [
            {"id": job.get("id"), "ok": False, "fault": dict(fault),
             "obs": {"group": len(jobs), "stage": "compile"}}
            for job in jobs
        ]
    compile_s = time.perf_counter() - compile_start
    sizes = {
        symbol.name: symbol.size
        for symbol in compiled.program.module.globals
    }
    global_names = sorted(sizes)
    reads = tuple(global_names)
    # Bad per-instance inputs fault their own job, never the group:
    # batch_map raises on a malformed write before any lane runs, so
    # validate each job's writes up front and only batch the clean ones.
    results = [None] * len(jobs)
    runnable = []
    for index, job in enumerate(jobs):
        problem = _writes_problem(job.get("writes") or {}, sizes)
        if problem is not None:
            results[index] = {
                "id": job.get("id"),
                "ok": False,
                "fault": {
                    "kind": "BadWrite",
                    "message": problem,
                    "category": "program",
                },
                "obs": None,
            }
        else:
            runnable.append(index)
    tasks = [
        (compiled.program, jobs[index].get("writes") or {}, reads)
        for index in runnable
    ]
    backend = "batch" if len(jobs) > 1 else jobs[0]["backend"]
    sim_start = time.perf_counter()
    outcomes = batch_map(tasks, lanes=lanes, backend=backend) if tasks else []
    sim_s = time.perf_counter() - sim_start
    obs = {
        "group": len(jobs),
        "backend_executed": backend,
        "cache": cache_source,
        "compile_s": round(compile_s, 6),
        "sim_s": round(sim_s, 6),
    }
    for index, outcome in zip(runnable, outcomes):
        results[index] = _result_for(jobs[index], outcome, global_names, obs)
    for result in results:
        if result["obs"] is None:
            result["obs"] = obs
    return results


def execute_job(job, cache=None, cache_dir=None):
    """Run one job directly (no queue, no pool) and return its result
    dict — the reference the service's responses must be bit-identical
    to.  *cache* is any compile cache (dict or
    :class:`~repro.serve.store.CompileCache`); *cache_dir* instead
    routes through the per-process store cache like the service does.
    """
    if cache is not None:
        from repro.evaluation.parallel import batch_map

        compile_start = time.perf_counter()
        compiled, cache_source = compile_for_job(job, cache)
        compile_s = time.perf_counter() - compile_start
        global_names = sorted(
            symbol.name for symbol in compiled.program.module.globals
        )
        outcome = batch_map(
            [(compiled.program, job.get("writes") or {}, tuple(global_names))],
            backend=job["backend"],
        )[0]
        obs = {
            "group": 1,
            "backend_executed": job["backend"],
            "cache": cache_source,
            "compile_s": round(compile_s, 6),
            "sim_s": None,
        }
        return _result_for(job, outcome, global_names, obs)
    return execute_group([job], cache_dir=cache_dir)[0]
