"""The ``repro serve`` wire protocol: JSON-lines jobs and responses.

One TCP connection carries newline-delimited JSON in both directions.
Every request line is a **job** (or the ``stats`` control request); the
service answers each job with an ``accepted`` or ``rejected`` event
immediately, then streams exactly one terminal ``result`` or ``error``
event when the job finishes.  Events for different jobs interleave
freely — clients correlate on ``id``.

Job schema (``kind`` selects the payload)::

    {"kind": "run",    "workload": "fir_32_1",
     "strategy": "CB", "partitioner": "greedy", "backend": "interp",
     "writes": {"x": [..]}, "reads": ["out"], "id": "optional"}
    {"kind": "recipe", "recipe": {...fuzz recipe dict...},
     "strategy": "CB", ...}
    {"kind": "stats"}

Any job may carry an optional ``tenant`` string.  Tenants get their
own generator-seed namespace (:func:`tenant_seed` salts ``recipe``
specs of the ``{"seed": N}`` form) and per-tenant accounting in the
service counters (``serve.tenant.<name>``).

Error taxonomy — the ``category`` field of ``error`` events maps
one-to-one from :mod:`repro.sim.errors`:

* ``program`` / ``machine`` / ``internal`` — the structured simulator
  taxonomy, with ``pc``/``cycle``/``backend`` carried through;
* ``protocol`` — the request itself was malformed (unparseable JSON,
  unknown kind/strategy/backend/partitioner, an unknown top-level
  field, a line over :data:`MAX_LINE_BYTES`, a truncated final line,
  bad field types); the offending field is named in ``message``;
* ``deadline`` — the job carried a ``deadline_ms`` budget that expired
  before (or during) execution (kind ``DeadlineExceeded``);
* ``unavailable`` — the circuit breaker for this job's compile key is
  open after repeated compile failures (kind ``CircuitOpen``;
  ``retry_after_s`` hints when a half-open probe will be admitted).

Admission control is a distinct ``rejected`` event (not an error): the
job was well-formed but the bounded queue is full — resubmit after the
event's ``retry_after_s`` hint.

See ``docs/serving.md`` for the full schema and worked transcripts.
"""

import hashlib
import json

from repro.partition.registry import PARTITIONERS
from repro.partition.strategies import Strategy
from repro.sim.errors import categorize
from repro.sim.fastsim import BACKENDS

PROTOCOL_VERSION = 1

#: request kinds that enqueue work (``stats`` is answered inline)
JOB_KINDS = ("run", "recipe")

#: hard per-line budget — a submission larger than this is rejected
#: before parsing (protects the service from unbounded buffering)
MAX_LINE_BYTES = 4 * 1024 * 1024

#: every top-level field a job submission may carry; anything else is
#: a typo or a version skew and is rejected with a ``protocol`` error
#: instead of being silently dropped
JOB_FIELDS = frozenset((
    "kind", "id", "strategy", "partitioner", "backend", "writes", "reads",
    "workload", "recipe", "tenant", "deadline_ms",
))


class JobError(ValueError):
    """A submission failed validation; ``field`` names the culprit."""

    def __init__(self, message, field=None):
        super().__init__(message)
        self.field = field


def encode(message):
    """One response/request dict as a JSON line (bytes, newline-terminated)."""
    return (json.dumps(message, sort_keys=True, default=repr) + "\n").encode()


def decode(line):
    """Parse one request line; raises :class:`JobError` on bad JSON."""
    try:
        obj = json.loads(line)
    except ValueError as error:
        raise JobError("unparseable JSON: %s" % error)
    if not isinstance(obj, dict):
        raise JobError("a request must be a JSON object")
    return obj


def _require_name(job, field, table, label):
    value = job.get(field)
    if value not in table:
        raise JobError(
            "unknown %s %r (choose from: %s)"
            % (label, value, ", ".join(sorted(str(k) for k in table))),
            field=field,
        )
    return value


def tenant_seed(tenant, seed):
    """Deterministically namespace a generator *seed* for *tenant*.

    Two tenants submitting the same generator spec must not land in one
    seed space (a tenant could otherwise predict — or poison warm cache
    entries for — another's programs), so the effective seed is drawn
    from SHA-256 over ``tenant:seed``.  Same tenant, same seed, same
    program, forever; the mapping is stable across processes.
    """
    digest = hashlib.sha256(
        ("%s:%d" % (tenant, int(seed))).encode()
    ).digest()
    return int.from_bytes(digest[:4], "big")


def validate_job(obj):
    """Validate and normalize one job submission.

    Returns a plain-JSON job dict with every optional field defaulted
    (``strategy`` CB, ``partitioner`` greedy, ``backend`` interp, empty
    ``writes``/``reads``); raises :class:`JobError` naming the offending
    field otherwise.  Ids are the caller's business: the service assigns
    one when absent.
    """
    kind = obj.get("kind")
    if kind not in JOB_KINDS:
        raise JobError(
            "unknown kind %r (choose from: %s)" % (kind, ", ".join(JOB_KINDS)),
            field="kind",
        )
    unknown = sorted(set(obj) - JOB_FIELDS)
    if unknown:
        raise JobError(
            "unknown field(s) %s (allowed: %s)"
            % (", ".join(unknown), ", ".join(sorted(JOB_FIELDS))),
            field=unknown[0],
        )
    job = {
        "kind": kind,
        "strategy": obj.get("strategy", "CB"),
        "partitioner": obj.get("partitioner", "greedy"),
        "backend": obj.get("backend", "interp"),
        "writes": obj.get("writes") or {},
        "reads": obj.get("reads") or [],
    }
    if "id" in obj:
        job["id"] = str(obj["id"])
    if "deadline_ms" in obj:
        deadline_ms = obj["deadline_ms"]
        if (not isinstance(deadline_ms, (int, float))
                or isinstance(deadline_ms, bool) or deadline_ms <= 0):
            raise JobError(
                "deadline_ms must be a positive number of milliseconds",
                field="deadline_ms",
            )
        job["deadline_ms"] = float(deadline_ms)
    _require_name(job, "strategy", Strategy.__members__, "strategy")
    _require_name(job, "partitioner", PARTITIONERS, "partitioner")
    _require_name(job, "backend", BACKENDS, "backend")
    if not isinstance(job["writes"], dict):
        raise JobError("writes must map global names to values", field="writes")
    if not isinstance(job["reads"], (list, tuple)):
        raise JobError("reads must be a list of global names", field="reads")
    job["reads"] = [str(name) for name in job["reads"]]
    if kind == "run":
        workload = obj.get("workload")
        if not isinstance(workload, str) or not workload:
            raise JobError("run jobs need a workload name", field="workload")
        from repro.workloads.registry import all_workloads

        _require_name({"workload": workload}, "workload",
                      all_workloads(), "workload")
        job["workload"] = workload
    else:
        recipe = obj.get("recipe")
        if not isinstance(recipe, dict):
            raise JobError("recipe jobs need a recipe dict", field="recipe")
        job["recipe"] = recipe
    tenant = obj.get("tenant")
    if tenant is not None:
        if not isinstance(tenant, str) or not tenant:
            raise JobError(
                "tenant must be a non-empty string", field="tenant"
            )
        job["tenant"] = tenant
        recipe = job.get("recipe")
        if recipe is not None and "body" not in recipe and "seed" in recipe:
            # generator specs draw from a per-tenant seed space; full
            # recipe bodies are the tenant's own program and pass through
            job["recipe"] = dict(
                recipe, seed=tenant_seed(tenant, recipe["seed"])
            )
    return job


def error_event(job_id, exc):
    """Map *exc* onto the response error taxonomy.

    Simulator faults keep their :mod:`repro.sim.errors` category and
    location context; :class:`JobError` maps to ``protocol``; anything
    else is ``internal``.
    """
    event = {
        "event": "error",
        "id": job_id,
        "kind": type(exc).__name__,
        "message": str(exc),
    }
    if isinstance(exc, JobError):
        event["category"] = "protocol"
        if exc.field is not None:
            event["field"] = exc.field
        return event
    event["category"] = categorize(exc) or "internal"
    for attribute in ("pc", "cycle", "backend", "seed"):
        value = getattr(exc, attribute, None)
        if value is not None:
            event[attribute] = value
    return event


def deadline_event(job_id, message, attempts=None):
    """Terminal event for a job whose ``deadline_ms`` budget expired
    (before dispatch, mid-execution, or by the time its result landed).
    ``attempts`` carries the supervision attempt count when the
    deadline terminated a running group."""
    event = {
        "event": "error",
        "id": job_id,
        "kind": "DeadlineExceeded",
        "category": "deadline",
        "message": message,
    }
    if attempts is not None:
        event["attempts"] = attempts
    return event


def circuit_open_event(job_id, retry_after_s):
    """Fail-fast terminal event for a job whose compile key's circuit
    breaker is open; ``retry_after_s`` hints when the next half-open
    probe will be admitted."""
    return {
        "event": "error",
        "id": job_id,
        "kind": "CircuitOpen",
        "category": "unavailable",
        "message": "circuit breaker open for this compile key after "
                   "repeated compile failures; retry after the hint",
        "retry_after_s": round(retry_after_s, 3),
    }


def error_event_from_description(job_id, description):
    """Same mapping as :func:`error_event`, from a JSON fault description
    (the :func:`repro.sim.errors.describe_fault` shape worker processes
    ship instead of live exceptions)."""
    event = {
        "event": "error",
        "id": job_id,
        "kind": description.get("kind", "Error"),
        "message": description.get("message", ""),
        "category": description.get("category") or "internal",
    }
    for attribute in ("pc", "cycle", "backend", "seed"):
        value = description.get(attribute)
        if value is not None:
            event[attribute] = value
    return event
