"""Persistent content-addressed artifact store for compiled programs.

The in-process compile cache (:func:`repro.evaluation.runner._compile_cached`
keyed by module fingerprint x strategy x profile x partitioner) dies with
every process, so campaign and CLI workloads recompile the same programs
forever.  This module promotes it to disk:

* :class:`ArtifactStore` — a content-addressed object store.  The key
  is a JSON-able dict (module fingerprint + the
  :func:`~repro.compiler.pipeline.options_signature` projection of the
  compile options + the frozen profile counts); its canonical JSON
  hashes to the entry id.  Entries are single files written atomically
  (temp file + ``os.replace``), self-verifying (a header records the
  SHA-256 of the pickled payload, re-checked on every read — a
  truncated or bit-flipped entry is deleted and reads as a miss, never
  as a wrong program), and evicted least-recently-used against a byte
  cap.
* :class:`CompileCache` — the tier the evaluation paths consume: an
  in-memory dict in front of an optional :class:`ArtifactStore`.  It
  speaks the same ``get(key)`` / ``cache[key] = value`` protocol as the
  plain dicts :func:`~repro.evaluation.runner._compile_cached` always
  used, so every caller (serial evaluation, ``parallel_map`` workers,
  the serve worker pool) reads through the store by construction.

Concurrent writers are safe by design: two processes racing on one key
both write a temp file and ``os.replace`` it into place — the loser's
bytes atomically overwrite the winner's *identical* bytes (compiles are
deterministic), and readers always see one complete entry or none.

See ``docs/serving.md`` for the on-disk layout and the key anatomy.
"""

import hashlib
import json
import os
import pickle
import tempfile

from repro.obs.core import NULL_RECORDER

#: bump when the entry format or pickled object layout changes — old
#: entries then miss instead of unpickling garbage (2: BasicBlock grew
#: __slots__, changing the pickled state shape of compiled programs)
FORMAT_VERSION = 2

#: default byte cap for a store (512 MiB — thousands of compiled
#: programs at the ~5 KiB each the registry workloads pickle to)
DEFAULT_MAX_BYTES = 512 * 1024 * 1024


def canonical_key(key):
    """Canonical JSON text of a key dict (stable across processes and
    runs: sorted keys, no whitespace variance)."""
    return json.dumps(key, sort_keys=True, separators=(",", ":"), default=repr)


def compile_key(fingerprint, options_sig, profile_key=None):
    """The artifact-store key for one compile.

    ``fingerprint`` is the :func:`~repro.evaluation.runner.module_fingerprint`
    content hash, ``options_sig`` the
    :func:`~repro.compiler.pipeline.options_signature` pairs (strategy,
    partitioner, partitioner_seed, optional passes), ``profile_key`` the
    frozen profile counts a ``Pr`` compile consumed (None otherwise).
    ``format`` pins :data:`FORMAT_VERSION` so layout changes invalidate
    old entries wholesale.
    """
    return {
        "format": FORMAT_VERSION,
        "fingerprint": fingerprint,
        "options": [list(pair) for pair in options_sig],
        "profile": (
            None if profile_key is None else [list(p) for p in profile_key]
        ),
    }


def _pickle_stripped(value):
    """Pickle *value*, temporarily detaching the program-level codegen
    cache (:attr:`program._codegen_cache` holds compiled closures —
    unpicklable, and worthless in another process anyway)."""
    program = getattr(value, "program", None)
    state = getattr(program, "__dict__", None)
    stripped = None
    if state is not None and "_codegen_cache" in state:
        stripped = state.pop("_codegen_cache")
    try:
        return pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    finally:
        if stripped is not None:
            state["_codegen_cache"] = stripped


class ArtifactStore:
    """Content-addressed, size-capped, corruption-detecting object store.

    Layout under *root*::

        objects/<id[:2]>/<id>        one file per entry:
                                     JSON header line + pickled payload

    The header records the key and the SHA-256 of the payload bytes;
    :meth:`get` re-hashes on every read and deletes anything that does
    not verify (torn write, bit rot, truncation) so corruption degrades
    to a recompile, never to a wrong artifact.  Reads touch the entry's
    mtime, which is the LRU clock :meth:`evict` orders by.

    Hit/miss/corruption/eviction tallies land on ``observe`` (counters
    ``store.hit`` / ``store.miss`` / ``store.corrupt`` /
    ``store.evicted``) and on the same-named attributes.
    """

    def __init__(self, root, max_bytes=DEFAULT_MAX_BYTES,
                 observe=NULL_RECORDER):
        self.root = os.path.abspath(root)
        self.max_bytes = max_bytes
        self.observe = observe
        self.hits = 0
        self.misses = 0
        self.corrupt = 0
        self.evicted = 0
        os.makedirs(os.path.join(self.root, "objects"), exist_ok=True)

    # -- addressing ----------------------------------------------------
    @staticmethod
    def entry_id(key):
        """SHA-256 of the canonical key JSON: the content address."""
        return hashlib.sha256(canonical_key(key).encode()).hexdigest()

    def path_for(self, key):
        """Absolute path of the entry file *key* addresses."""
        entry = self.entry_id(key)
        return os.path.join(self.root, "objects", entry[:2], entry)

    # -- read ----------------------------------------------------------
    @staticmethod
    def _read_verified(path):
        """Read and fully verify one entry file: header format pin,
        SHA-256 of the payload against the recorded digest, and a clean
        unpickle.  Returns the stored value; raises on any defect.
        ``OSError`` means the entry does not exist (a plain miss);
        anything else means corruption.  Shared by :meth:`get` (lazy,
        per-read) and :meth:`scrub` (eager, whole-store walk)."""
        with open(path, "rb") as handle:
            header_line = handle.readline()
            payload = handle.read()
        header = json.loads(header_line)
        if header.get("format") != FORMAT_VERSION:
            raise ValueError("format mismatch")
        if hashlib.sha256(payload).hexdigest() != header.get("digest"):
            raise ValueError("payload digest mismatch")
        return pickle.loads(payload)

    def get(self, key):
        """The stored object for *key*, or None on miss/corruption.

        Every read re-verifies the payload digest recorded in the
        header; an entry that fails (truncated pickle, flipped bit,
        foreign format) is deleted and counted under ``store.corrupt``
        — the caller recompiles, exactly as on a plain miss.
        """
        path = self.path_for(key)
        try:
            value = self._read_verified(path)
        except OSError:
            self.misses += 1
            self.observe.counter("store.miss")
            return None
        except Exception:
            self._discard(path)
            self.corrupt += 1
            self.misses += 1
            self.observe.counter("store.corrupt")
            self.observe.counter("store.miss")
            return None
        try:
            os.utime(path, None)  # LRU clock
        except OSError:
            pass
        self.hits += 1
        self.observe.counter("store.hit")
        return value

    # -- write ---------------------------------------------------------
    def put(self, key, value):
        """Store *value* under *key* atomically, then enforce the cap.

        The entry is written to a temp file in the store root and
        ``os.replace``d into place, so concurrent writers (two worker
        processes racing on the same compile) can never interleave
        bytes and readers can never observe a half-written entry.
        Returns the entry path.
        """
        path = self.path_for(key)
        payload = _pickle_stripped(value)
        header = json.dumps(
            {
                "format": FORMAT_VERSION,
                "digest": hashlib.sha256(payload).hexdigest(),
                "size": len(payload),
                "key": key,
            },
            sort_keys=True,
        ).encode()
        os.makedirs(os.path.dirname(path), exist_ok=True)
        descriptor, temp_path = tempfile.mkstemp(
            prefix=".tmp-", dir=self.root
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(header + b"\n" + payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(temp_path, path)
        except BaseException:
            self._discard(temp_path)
            raise
        self.observe.counter("store.put")
        self.evict()
        return path

    # -- blobs ---------------------------------------------------------
    def put_blob(self, obj):
        """Store a JSON-able object content-addressed by its own
        canonical digest; returns the digest.

        Blobs carry the payloads the serve dispatcher strips out of
        worker task tuples (fuzz recipe dicts, today): the dispatcher
        ships the digest, the worker rehydrates with :meth:`get_blob`
        through its per-process store handle.  Writing is idempotent —
        an existing entry is left untouched.
        """
        digest = hashlib.sha256(canonical_key(obj).encode()).hexdigest()
        key = {"blob": digest}
        if not os.path.exists(self.path_for(key)):
            self.put(key, obj)
        return digest

    def get_blob(self, digest):
        """The blob stored under *digest*, or None on miss/corruption
        (same verify-on-read contract as :meth:`get`)."""
        return self.get({"blob": digest})

    # -- maintenance ---------------------------------------------------
    def entries(self):
        """Every entry as ``(path, size_bytes, mtime)``, LRU first."""
        found = []
        objects = os.path.join(self.root, "objects")
        for directory, _subdirs, names in os.walk(objects):
            for name in names:
                path = os.path.join(directory, name)
                try:
                    stat = os.stat(path)
                except OSError:
                    continue  # evicted/replaced under our feet
                found.append((path, stat.st_size, stat.st_mtime))
        found.sort(key=lambda item: item[2])
        return found

    def total_bytes(self):
        """Sum of all entry sizes currently on disk."""
        return sum(size for _path, size, _mtime in self.entries())

    def evict(self):
        """Delete least-recently-used entries until the store fits
        ``max_bytes``.  The most recently touched entry always
        survives, so a just-written artifact is immediately readable
        even under a cap smaller than one entry."""
        if self.max_bytes is None:
            return
        entries = self.entries()
        total = sum(size for _path, size, _mtime in entries)
        while total > self.max_bytes and len(entries) > 1:
            path, size, _mtime = entries.pop(0)
            self._discard(path)
            total -= size
            self.evicted += 1
            self.observe.counter("store.evicted")

    def scrub(self):
        """Eagerly verify every entry (``repro serve --scrub-cache``).

        Walks the whole store through the same
        :meth:`_read_verified` contract the lazy read path applies —
        header format, payload digest, unpickle — and deletes anything
        that fails, so corruption surfaces (and is purged) up front
        instead of at first read.  Returns ``{"checked": N, "corrupt":
        N, "purged_bytes": N}``; corrupt entries also land on the
        ``store.corrupt`` counter and tally.
        """
        checked = corrupt = purged = 0
        for path, size, _mtime in self.entries():
            checked += 1
            try:
                self._read_verified(path)
            except Exception:
                self._discard(path)
                corrupt += 1
                purged += size
                self.corrupt += 1
                self.observe.counter("store.corrupt")
        self.observe.counter("store.scrubbed", checked)
        return {"checked": checked, "corrupt": corrupt,
                "purged_bytes": purged}

    def clear(self):
        """Delete every entry (the store directory itself survives)."""
        for path, _size, _mtime in self.entries():
            self._discard(path)

    @staticmethod
    def _discard(path):
        try:
            os.unlink(path)
        except OSError:
            pass

    def stats(self):
        """JSON-able snapshot of the tallies plus the on-disk footprint."""
        entries = self.entries()
        return {
            "root": self.root,
            "entries": len(entries),
            "bytes": sum(size for _path, size, _mtime in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
            "corrupt": self.corrupt,
            "evicted": self.evicted,
        }


class CompileCache:
    """In-memory compile cache tiered over an optional :class:`ArtifactStore`.

    Speaks the dict protocol :func:`repro.evaluation.runner._compile_cached`
    expects — ``get(key)`` and ``cache[key] = compiled`` with the
    in-memory 4-tuple key ``(fingerprint, strategy, profile_key,
    partitioner)`` — and translates that tuple to the canonical
    persistent key (:func:`compile_key` over the full
    :func:`~repro.compiler.pipeline.options_signature`, so
    ``partitioner_seed`` and the optional passes are pinned to their
    defaults rather than silently ignored).

    ``last_source`` records where the most recent lookup was satisfied:
    ``"memory"``, ``"store"``, or ``"compile"`` (a miss the caller is
    about to fill) — the serve path reports it per job.
    """

    def __init__(self, store=None, memory=None):
        self.memory = {} if memory is None else memory
        self.store = store
        self.last_source = None

    @staticmethod
    def persistent_key(key):
        """Map the in-memory 4-tuple to the canonical store key dict."""
        from repro.compiler.pipeline import CompileOptions, options_signature

        fingerprint, strategy, profile_key, partitioner = key
        options = CompileOptions(strategy=strategy, partitioner=partitioner)
        return compile_key(
            fingerprint, options_signature(options), profile_key
        )

    def get(self, key):
        value = self.memory.get(key)
        if value is not None:
            self.last_source = "memory"
            return value
        if self.store is not None:
            value = self.store.get(self.persistent_key(key))
            if value is not None:
                self.memory[key] = value
                self.last_source = "store"
                return value
        self.last_source = "compile"
        return None

    def __setitem__(self, key, value):
        self.memory[key] = value
        if self.store is not None:
            self.store.put(self.persistent_key(key), value)

    def __contains__(self, key):
        return self.get(key) is not None

    def __len__(self):
        return len(self.memory)


#: cache_dir -> per-process CompileCache (worker side; one store handle
#: and one memory tier per directory per process)
_PROCESS_CACHES = {}


def process_compile_cache(cache_dir, memory=None, max_bytes=None):
    """The per-process :class:`CompileCache` for *cache_dir*.

    ``None`` returns a memory-only cache (per-process, no persistence —
    the pre-store behaviour).  Worker entry points call this instead of
    constructing stores directly so every task a process runs shares one
    memory tier and one store handle per directory.
    """
    cache = _PROCESS_CACHES.get(cache_dir)
    if cache is None:
        store = None
        if cache_dir is not None:
            store = ArtifactStore(
                cache_dir,
                max_bytes=DEFAULT_MAX_BYTES if max_bytes is None else max_bytes,
            )
        cache = CompileCache(store=store, memory=memory)
        _PROCESS_CACHES[cache_dir] = cache
    return cache
