"""repro — reproduction of *Exploiting Dual Data-Memory Banks in Digital
Signal Processors* (Saghir, Chow & Lee, ASPLOS 1996).

The package is a complete, self-contained stack:

* :mod:`repro.frontend` — a Python-embedded DSL standing in for the
  paper's C front-end;
* :mod:`repro.ir` / :mod:`repro.analysis` — the unpacked-operation IR and
  the analyses the back-end needs;
* :mod:`repro.partition` — **the paper's contribution**: compaction-based
  data partitioning and partial data duplication;
* :mod:`repro.compiler` — register allocation, dual-stack frames, and the
  operation-compaction (VLIW scheduling) pass;
* :mod:`repro.sim` — a cycle-counting instruction-set simulator of the
  nine-unit VLIW model architecture with dual data banks;
* :mod:`repro.workloads` — the paper's 12 kernels and 11 applications;
* :mod:`repro.cost` / :mod:`repro.evaluation` — the cost model and the
  harness regenerating Figures 7-8 and Table 3.

Quickstart
----------
>>> from repro import ProgramBuilder, Strategy, compile_module, Simulator
>>> pb = ProgramBuilder("dot")
>>> A = pb.global_array("A", 64, float, init=[1.0] * 64)
>>> B = pb.global_array("B", 64, float, init=[0.5] * 64)
>>> out = pb.global_scalar("out", float)
>>> with pb.function("main") as f:
...     acc = f.float_var("acc")
...     f.assign(acc, 0.0)
...     with f.loop(64) as i:
...         f.assign(acc, acc + A[i] * B[i])
...     f.assign(out[0], acc)
>>> compiled = compile_module(pb.build(), strategy=Strategy.CB)
>>> simulator = Simulator(compiled.program)
>>> _ = simulator.run()
>>> simulator.read_global("out")
32.0
"""

from repro.compiler import CompileOptions, compile_module
from repro.frontend import ProgramBuilder
from repro.partition import Strategy, run_allocation
from repro.sim import Simulator

__version__ = "1.0.0"

__all__ = [
    "CompileOptions",
    "ProgramBuilder",
    "Simulator",
    "Strategy",
    "compile_module",
    "run_allocation",
    "__version__",
]
