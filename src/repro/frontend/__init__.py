"""Embedded DSL front-end.

The paper's compiler uses a GNU-C front-end that translates C programs into
a stream of unpacked machine operations.  We reproduce that contract with a
Python-embedded DSL: :class:`~repro.frontend.builder.ProgramBuilder` lets a
benchmark author write structured code (counted loops, while loops,
conditionals, calls, array references, scalar expressions) that lowers to
exactly the operation stream the back-end consumes, with loop-nesting
depths annotated on basic blocks.

Example
-------
>>> from repro.frontend import ProgramBuilder
>>> pb = ProgramBuilder("dot")
>>> A = pb.global_array("A", 8, float, init=[1.0] * 8)
>>> B = pb.global_array("B", 8, float, init=[2.0] * 8)
>>> out = pb.global_scalar("out", float)
>>> with pb.function("main") as f:
...     s = f.float_var("sum")
...     f.assign(s, 0.0)
...     with f.loop(8) as i:
...         f.assign(s, s + A[i] * B[i])
...     f.assign(out[0], s)
>>> module = pb.build()
"""

from repro.frontend.builder import FunctionBuilder, ProgramBuilder
from repro.frontend.expressions import Expr

__all__ = ["Expr", "FunctionBuilder", "ProgramBuilder"]
