"""Structured program construction: functions, loops, conditionals, calls.

:class:`ProgramBuilder` plays the role of the paper's C front-end: it turns
structured source (written as Python ``with`` blocks and operator-overloaded
expressions) into a :class:`repro.ir.Module` of unpacked machine operations,
with loop-nesting depth recorded on every basic block.

Counted loops lower to the model architecture's zero-overhead hardware
loops (the DSP56001 ``DO``/``REP`` mechanism of paper Figure 1): the PCU
executes the back-edge without a compare/branch instruction, so a loop body
can compact down to a single long instruction.  ``while`` loops and loops
forced with ``hw=False`` use an explicit compare-and-branch header.
"""

import contextlib

from repro.frontend.expressions import (
    ArrayRef,
    BinOp,
    CallExpr,
    Const,
    Expr,
    Lowerer,
    VarRef,
    wrap,
)
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.intern import BuildContext, activate, retire
from repro.ir.module import Module
from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import Storage, Symbol
from repro.ir.types import DataType, RegClass
from repro.ir.validate import validate_module
from repro.ir.values import Immediate, Label


def _guard_registers(expr, context):
    """Record the registers *expr* assumed invariant on *context*."""
    if isinstance(expr, VarRef):
        context.guarded.add(expr.register)
    elif isinstance(expr, BinOp):
        _guard_registers(expr.left, context)
        _guard_registers(expr.right, context)


def _expr_key(expr):
    """A structural, hashable key for induction-variable caching."""
    if isinstance(expr, Const):
        return ("c", expr.value)
    if isinstance(expr, VarRef):
        return ("r", id(expr.register))
    if isinstance(expr, BinOp):
        return (expr.operator, _expr_key(expr.left), _expr_key(expr.right))
    return ("?", id(expr))


def _data_type(py_type):
    if py_type in (float, DataType.FLOAT):
        return DataType.FLOAT
    if py_type in (int, DataType.INT):
        return DataType.INT
    raise TypeError("unsupported element type %r" % (py_type,))


class ArrayHandle:
    """A subscriptable handle over a global or local symbol."""

    __slots__ = ("symbol",)

    def __init__(self, symbol):
        self.symbol = symbol

    def __getitem__(self, index):
        return ArrayRef(self.symbol, index)

    def __len__(self):
        return self.symbol.size

    @property
    def size(self):
        return self.symbol.size

    @property
    def name(self):
        return self.symbol.name

    def __repr__(self):
        return "<ArrayHandle %s[%d]>" % (self.symbol.name, self.symbol.size)


class FunctionHandle:
    """A callable handle to a defined DSL function."""

    __slots__ = ("name", "param_types", "return_type")

    def __init__(self, name, param_types, return_type):
        self.name = name
        self.param_types = param_types
        self.return_type = return_type

    def __call__(self, *args):
        if len(args) != len(self.param_types):
            raise TypeError(
                "%s() takes %d arguments, got %d"
                % (self.name, len(self.param_types), len(args))
            )
        return CallExpr(self, args)


class ProgramBuilder:
    """Top-level builder for a whole program (a :class:`Module`).

    Construction activates a :class:`~repro.ir.intern.BuildContext`:
    every expression, immediate, and label built until ``build()`` is
    hash-consed/interned through it, so structurally equal subtrees are
    pointer-identical within this build (and only within it — the
    context retires with the builder, which is what keeps two programs
    from ever sharing nodes).
    """

    __slots__ = ("module", "_handles", "_context")

    def __init__(self, name):
        self.module = Module(name)
        self._handles = {}
        self._context = activate(BuildContext())

    # ------------------------------------------------------------------
    # Global data
    # ------------------------------------------------------------------
    def global_array(self, name, size, element_type=float, init=None, opaque=False):
        """Declare a global array of *size* elements."""
        symbol = Symbol(
            name,
            data_type=_data_type(element_type),
            size=size,
            storage=Storage.GLOBAL,
            initializer=init,
            opaque=opaque,
        )
        self.module.add_global(symbol)
        return ArrayHandle(symbol)

    def global_scalar(self, name, element_type=float, init=None):
        """Declare a global scalar (a one-element array, indexed ``[0]``)."""
        initializer = None if init is None else [init]
        return self.global_array(name, 1, element_type, init=initializer)

    # ------------------------------------------------------------------
    # Functions
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def function(self, name, params=(), returns=None):
        """Define a function; yields a :class:`FunctionBuilder`.

        ``params`` is a sequence of ``(name, type)`` pairs; scalars only
        (arrays are shared through globals, as in the paper's benchmarks).
        """
        function = Function(name)
        for pname, ptype in params:
            function.add_symbol(
                Symbol(pname, data_type=_data_type(ptype), storage=Storage.PARAM)
            )
        return_type = _data_type(returns) if returns is not None else None
        builder = FunctionBuilder(self, function, return_type)
        yield builder
        builder._finalize()
        self.module.add_function(function)
        handle = FunctionHandle(name, [p[1] for p in params], return_type)
        self._handles[name] = handle
        builder.handle = handle

    def get(self, name):
        """Handle of a previously defined function."""
        return self._handles[name]

    def build(self, validate=True):
        """Finish the module, optionally running the IR validator.

        Retires the build context (idempotently) and records its node
        statistics on ``module.node_stats`` for observability — the
        compile pipeline forwards them to ``repro report``.
        """
        if self._context is not None:
            self.module.node_stats = self._context.stats()
            retire(self._context)
            self._context = None
        if validate:
            validate_module(self.module)
        return self.module


class _LoopIds:
    """Per-function counter for hardware-loop identifiers."""

    __slots__ = ("next",)

    def __init__(self):
        self.next = 0

    def take(self):
        value = self.next
        self.next = value + 1
        return value


class _LoopContext:
    """An open counted loop, tracked for induction-variable reduction.

    When an array index inside the loop is affine in the loop index (e.g.
    ``x[n + k]`` inside the loop over ``k``), the builder strength-reduces
    it to an induction register: initialized once in the loop preheader
    and incremented at the latch — the post-increment address-register
    idiom every DSP compiler applies (the paper's compiler runs "all other
    optimizations"; without this, an address add would serialize the very
    load pairs the allocation pass exists to parallelize).
    """

    __slots__ = ("index_register", "preheader", "step", "inductions",
                 "latch_increments", "written", "guarded")

    def __init__(self, index_register, preheader, step):
        self.index_register = index_register
        self.preheader = preheader
        self.step = step
        #: structural expression key -> induction register
        self.inductions = {}
        #: (register, signed step) pairs to bump at the latch
        self.latch_increments = []
        #: registers written anywhere inside this loop so far
        self.written = set()
        #: registers an induction variable assumed invariant; writing one
        #: of these while the loop is still open is a build error
        self.guarded = set()


class FunctionBuilder:
    """Builds one function's blocks, registers, and locals."""

    __slots__ = ("program", "function", "return_type", "handle", "_lowerer",
                 "_depth", "_label_counter", "_const_cache", "_const_ops",
                 "_loop_ids", "_pending_else", "_finalized", "_open_loops",
                 "_block")

    def __init__(self, program, function, return_type):
        self.program = program
        self.function = function
        self.return_type = return_type
        self.handle = None
        self._lowerer = Lowerer(self)
        self._depth = 0
        self._label_counter = 0
        self._const_cache = {}
        self._const_ops = []
        self._loop_ids = _LoopIds()
        self._pending_else = None
        self._finalized = False
        self._open_loops = []
        self._block = self._make_block("entry", 0)
        function.blocks.append(self._block)

    # ------------------------------------------------------------------
    # Low-level plumbing
    # ------------------------------------------------------------------
    def emit(self, op):
        """Append *op* to the current basic block."""
        self._pending_else = None
        if op.dest is not None and self._open_loops:
            dest = op.dest
            for context in self._open_loops:
                context.written.add(dest)
                if dest in context.guarded:
                    raise RuntimeError(
                        "register %r feeds a strength-reduced array index "
                        "but is modified inside the loop; hoist the "
                        "assignment out of the loop" % dest
                    )
        self._block.append(op)
        return op

    def new_register(self, rclass, name=None):
        return self.function.new_register(rclass, name)

    def constant(self, value, rclass):
        """A register holding *value*, materialized once in the entry block."""
        if rclass is RegClass.FLOAT:
            value = float(value)
        else:
            value = int(value)
        key = (rclass, value)
        reg = self._const_cache.get(key)
        if reg is None:
            reg = self.new_register(rclass)
            opcode = {
                RegClass.INT: OpCode.CONST,
                RegClass.FLOAT: OpCode.FCONST,
                RegClass.ADDR: OpCode.ACONST,
            }[rclass]
            self._const_ops.append(
                Operation(opcode, dest=reg, sources=(Immediate(value),))
            )
            self._const_cache[key] = reg
        return reg

    def _make_block(self, hint, depth):
        label = "%s.%s%d" % (self.function.name, hint, self._label_counter)
        self._label_counter = self._label_counter + 1
        return BasicBlock(label, depth)

    def _start(self, block):
        """Append *block* to the layout and make it current."""
        self._pending_else = None
        self.function.blocks.append(block)
        self._block = block
        return block

    # ------------------------------------------------------------------
    # Variables
    # ------------------------------------------------------------------
    def float_var(self, name=None):
        """A register-resident float scalar."""
        return VarRef(self.new_register(RegClass.FLOAT, name))

    def int_var(self, name=None):
        """A register-resident integer scalar."""
        return VarRef(self.new_register(RegClass.INT, name))

    def index_var(self, name=None):
        """A register-resident address/index scalar."""
        return VarRef(self.new_register(RegClass.ADDR, name))

    def param(self, name):
        """The register holding parameter *name*."""
        for symbol, register in zip(
            self.function.params, self.function.param_registers
        ):
            if symbol.name == name:
                return VarRef(register)
        raise KeyError("no parameter %r in %s" % (name, self.function.name))

    def local_array(self, name, size, element_type=float):
        """Declare a stack-resident local array (partitionable data)."""
        symbol = Symbol(
            name, data_type=_data_type(element_type), size=size, storage=Storage.LOCAL
        )
        self.function.add_symbol(symbol)
        return ArrayHandle(symbol)

    def local_scalar(self, name, element_type=float):
        """Declare a stack-resident local scalar (indexed ``[0]``)."""
        return self.local_array(name, 1, element_type)

    # ------------------------------------------------------------------
    # Statements
    # ------------------------------------------------------------------
    def assign(self, target, value):
        """Assign *value* to a register variable or an array element."""
        value = wrap(value)
        if isinstance(target, VarRef):
            self._lowerer.into(value, target.register)
            self._pending_else = None
            return
        if isinstance(target, ArrayRef):
            want = (
                RegClass.FLOAT
                if target.symbol.data_type is DataType.FLOAT
                else RegClass.INT
            )
            operand = self._lowerer.as_value(value, want=want)
            if isinstance(operand, Immediate):
                operand = self.constant(operand.value, want)
            base, offset = self._lowerer.as_address(target.index)
            sources = (
                (operand, base) if offset is None else (operand, base, offset)
            )
            self.emit(
                Operation(OpCode.STORE, sources=sources, symbol=target.symbol)
            )
            return
        raise TypeError("cannot assign to %r" % (target,))

    def add_assign(self, target, value):
        """``target += value`` (re-loads array elements, like C does)."""
        self.assign(target, target + wrap(value))

    def eval(self, expr, want=None):
        """Lower *expr* for its value; returns the operand (advanced use)."""
        return self._lowerer.as_value(expr, want=want)

    def call(self, handle, *args):
        """Call a function for effect, discarding any return value."""
        self.lower_call(CallExpr(handle, args), discard=True)

    def lower_call(self, expr, discard=False):
        handle = expr.handle
        sources = []
        for arg, ptype in zip(expr.args, handle.param_types):
            want = RegClass.FLOAT if _data_type(ptype) is DataType.FLOAT else RegClass.INT
            sources.append(self._lowerer.as_value(arg, want=want))
        dest = None
        if handle.return_type is not None and not discard:
            rclass = (
                RegClass.FLOAT
                if handle.return_type is DataType.FLOAT
                else RegClass.INT
            )
            dest = self.new_register(rclass)
        self.emit(
            Operation(
                OpCode.CALL, dest=dest, sources=tuple(sources), callee=handle.name
            )
        )
        # A call is a scheduling barrier; start a fresh block after it so
        # compaction never moves operations across the call.
        self._start(self._make_block("postcall", self._block.loop_depth))
        return dest

    def ret(self, value=None):
        """Return from the function (with an optional scalar value)."""
        sources = ()
        if value is not None:
            if self.return_type is None:
                raise ValueError("%s declared no return type" % self.function.name)
            want = (
                RegClass.FLOAT
                if self.return_type is DataType.FLOAT
                else RegClass.INT
            )
            operand = self._lowerer.as_value(value, want=want)
            if isinstance(operand, Immediate):
                operand = self.constant(operand.value, want)
            sources = (operand,)
        self.emit(Operation(OpCode.RET, sources=sources))

    # ------------------------------------------------------------------
    # Control flow
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def loop(self, count, hw=True, name=None):
        """A counted loop ``for i in range(count)``; yields the index.

        Lowered to a zero-overhead hardware loop unless ``hw=False``, in
        which case an explicit compare-and-branch loop is built (useful for
        ablation studies).
        """
        for_range = self.for_range(0, count, hw=hw, name=name)
        with for_range as index:
            yield index

    @contextlib.contextmanager
    def for_range(self, start, stop, step=1, hw=True, name=None):
        """A counted loop over ``range(start, stop, step)``.

        ``step`` must be a positive compile-time constant; ``start`` and
        ``stop`` may be arbitrary expressions.
        """
        if not isinstance(step, int) or step <= 0:
            raise ValueError("step must be a positive integer, got %r" % (step,))
        start = wrap(start)
        stop = wrap(stop)
        if hw:
            with self._hw_loop(start, stop, step, name) as index:
                yield index
        else:
            with self._sw_counted_loop(start, stop, step, name) as index:
                yield index

    @contextlib.contextmanager
    def _hw_loop(self, start, stop, step, name):
        count = self._trip_count(start, stop, step)
        count_operand = self._lowerer.as_index(count)
        index = self.index_var(name or "i")
        self._lowerer.into(start, index.register)
        loop_id = "%s.L%d" % (self.function.name, self._loop_ids.take())
        depth = self._block.loop_depth
        begin = Operation(
            OpCode.LOOP_BEGIN, sources=(count_operand,), target=Label(loop_id)
        )
        self.emit(begin)
        context = _LoopContext(index.register, self._block, step)
        self._open_loops.append(context)
        body = self._make_block("body", depth + 1)
        body.hw_loop = loop_id
        self._start(body)
        yield index
        self._open_loops.pop()
        self._emit_latch_increments(context)
        self.emit(
            Operation(
                OpCode.AADD,
                dest=index.register,
                sources=(index.register, Immediate(step)),
            )
        )
        end = Operation(OpCode.LOOP_END, target=Label(loop_id))
        self.emit(end)
        self._start(self._make_block("after", depth))

    def _emit_latch_increments(self, context):
        for register, signed_step in context.latch_increments:
            self.emit(
                Operation(
                    OpCode.AADD,
                    dest=register,
                    sources=(register, Immediate(signed_step)),
                )
            )

    # ------------------------------------------------------------------
    # Induction-variable strength reduction
    # ------------------------------------------------------------------
    def reduce_index(self, expr):
        """Strength-reduce an affine array index, or return None.

        Handles ``i + inv``, ``inv + i``, ``i - inv`` and ``inv - i`` where
        ``i`` is the index of an open counted loop and ``inv`` is built
        only from constants and the indices of loops *enclosing* that one
        (which are provably loop-invariant inside it).
        """
        if not isinstance(expr, BinOp) or expr.operator not in ("+", "-"):
            return None
        for position in range(len(self._open_loops) - 1, -1, -1):
            context = self._open_loops[position]
            index_reg = context.index_register
            left_is_index = (
                isinstance(expr.left, VarRef) and expr.left.register is index_reg
            )
            right_is_index = (
                isinstance(expr.right, VarRef) and expr.right.register is index_reg
            )
            if left_is_index == right_is_index:
                continue
            invariant = expr.right if left_is_index else expr.left
            if not self._invariant_in(invariant, position):
                continue
            key = (expr.operator, left_is_index, _expr_key(invariant))
            register = context.inductions.get(key)
            _guard_registers(invariant, context)
            if register is None:
                register = self.new_register(RegClass.ADDR, name="ind")
                if left_is_index:  # i + inv  or  i - inv
                    init = (
                        VarRef(index_reg) + invariant
                        if expr.operator == "+"
                        else VarRef(index_reg) - invariant
                    )
                    signed_step = context.step
                else:  # inv + i  or  inv - i
                    init = (
                        invariant + VarRef(index_reg)
                        if expr.operator == "+"
                        else invariant - VarRef(index_reg)
                    )
                    signed_step = (
                        context.step if expr.operator == "+" else -context.step
                    )
                saved = self._block
                self._block = context.preheader
                self._lowerer.into(init, register)
                self._block = saved
                context.inductions[key] = register
                context.latch_increments.append((register, signed_step))
            return register
        return None

    def _invariant_in(self, expr, loop_position):
        """Whether *expr* is provably invariant inside the loop at
        ``self._open_loops[loop_position]``: constants, indices of
        strictly enclosing loops, and address registers not (yet) written
        inside the loop — the latter protected by a write guard that turns
        a later in-loop write into a build error."""
        context = self._open_loops[loop_position]
        if isinstance(expr, Const):
            return True
        if isinstance(expr, VarRef):
            register = expr.register
            for outer in self._open_loops[:loop_position]:
                if register is outer.index_register:
                    return True
            return (
                register.rclass is RegClass.ADDR
                and register is not context.index_register
                and register not in context.written
            )
        if isinstance(expr, BinOp) and expr.operator in ("+", "-", "*"):
            return self._invariant_in(expr.left, loop_position) and (
                self._invariant_in(expr.right, loop_position)
            )
        return False

    def _trip_count(self, start, stop, step):
        """Expression for the number of iterations of a counted loop."""
        if isinstance(start, Const) and isinstance(stop, Const):
            trips = len(range(int(start.value), int(stop.value), step))
            return Const(trips, DataType.INT)
        span = stop - start
        if step == 1:
            return span
        return (span + (step - 1)) / step

    @contextlib.contextmanager
    def _sw_counted_loop(self, start, stop, step, name):
        index = self.index_var(name or "i")
        self._lowerer.into(start, index.register)
        stop_operand = self._lowerer.as_index(stop)
        if isinstance(stop_operand, Immediate):
            stop_reg = self.constant(stop_operand.value, RegClass.ADDR)
        else:
            stop_reg = stop_operand
        depth = self._block.loop_depth
        context = _LoopContext(index.register, self._block, step)
        header = self._make_block("whead", depth + 1)
        after_label = "%s.wafter%d" % (self.function.name, self._loop_ids.take())
        self._start(header)
        cond = self.new_register(RegClass.INT)
        self.emit(
            Operation(OpCode.ACMPLT, dest=cond, sources=(index.register, stop_reg))
        )
        self.emit(Operation(OpCode.BRF, sources=(cond,), target=Label(after_label)))
        body = self._make_block("wbody", depth + 1)
        self._start(body)
        self._open_loops.append(context)
        yield index
        self._open_loops.pop()
        self._emit_latch_increments(context)
        self.emit(
            Operation(
                OpCode.AADD,
                dest=index.register,
                sources=(index.register, Immediate(step)),
            )
        )
        self.emit(Operation(OpCode.BR, target=Label(header.label)))
        after = BasicBlock(after_label, depth)
        self._start(after)

    @contextlib.contextmanager
    def while_(self, condition):
        """A while loop; *condition* is a zero-argument callable returning
        the loop condition expression, re-evaluated in the loop header."""
        depth = self._block.loop_depth
        header = self._make_block("whead", depth + 1)
        after_label = "%s.wafter%d" % (self.function.name, self._loop_ids.take())
        self._start(header)
        cond_operand = self._lowerer.as_value(condition(), want=RegClass.INT)
        if isinstance(cond_operand, Immediate):
            cond_operand = self.constant(cond_operand.value, RegClass.INT)
        self.emit(
            Operation(OpCode.BRF, sources=(cond_operand,), target=Label(after_label))
        )
        body = self._make_block("wbody", depth + 1)
        self._start(body)
        yield
        self.emit(Operation(OpCode.BR, target=Label(header.label)))
        self._start(BasicBlock(after_label, depth))

    @contextlib.contextmanager
    def if_(self, condition):
        """A conditional; optionally followed immediately by ``else_()``."""
        cond_operand = self._lowerer.as_value(wrap(condition), want=RegClass.INT)
        if isinstance(cond_operand, Immediate):
            cond_operand = self.constant(cond_operand.value, RegClass.INT)
        depth = self._block.loop_depth
        target = self._make_block("ifjoin", depth)
        self.emit(
            Operation(
                OpCode.BRF, sources=(cond_operand,), target=Label(target.label)
            )
        )
        self._start(self._make_block("then", depth))
        yield
        then_tail = self._block
        self._start(target)
        # Allow an immediately following else_() to claim `target` as the
        # else block; any intervening statement clears the pending record.
        self._pending_else = (then_tail, target)

    @contextlib.contextmanager
    def else_(self):
        """The else branch of the immediately preceding ``if_``."""
        if self._pending_else is None:
            raise RuntimeError("else_() must immediately follow an if_() block")
        then_tail, else_block = self._pending_else
        self._pending_else = None
        if else_block is not self._block or else_block.ops:
            raise RuntimeError("else_() must immediately follow an if_() block")
        depth = else_block.loop_depth
        join = self._make_block("join", depth)
        if then_tail.terminator is None:
            then_tail.append(Operation(OpCode.BR, target=Label(join.label)))
        yield
        self._start(join)

    # ------------------------------------------------------------------
    def _finalize(self):
        if self._finalized:
            return
        self._finalized = True
        entry = self.function.blocks[0]
        entry.ops[:0] = self._const_ops
        last = self.function.blocks[-1]
        if last.terminator is None:
            if self.function.name == "main":
                last.append(Operation(OpCode.HALT))
            else:
                last.append(Operation(OpCode.RET))
