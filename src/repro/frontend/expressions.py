"""Expression trees and their lowering to unpacked machine operations.

Expressions are built with ordinary Python operators on :class:`Expr`
subclasses and lowered on demand by the :class:`FunctionBuilder`.  Lowering
chooses the functional-unit domain from the expression type:

* ``ADDR`` expressions (loop indices, address arithmetic) lower to AU ops;
* ``INT`` expressions lower to DU ops;
* ``FLOAT`` expressions lower to FPU ops, with the multiply-accumulate
  pattern ``acc = acc + a * b`` folded into a single ``FMAC``.

Mixed int/float arithmetic inserts explicit ``ITOF`` conversions, and an
integer value used as an array index inserts a ``MOVIA`` transfer into the
address register file — mirroring the explicit register-file moves of the
model architecture.
"""

from repro.ir.intern import cons
from repro.ir.operations import OpCode, Operation
from repro.ir.types import DataType, RegClass
from repro.ir.values import Immediate


class Expr:
    """Base class for DSL expressions.

    ``dtype`` is the scalar result type.  ``is_index`` marks expressions
    whose natural home is the address register file.

    Every subclass is slotted (no per-instance ``__dict__``) and
    **hash-consed** while a :class:`~repro.ir.intern.BuildContext` is
    active: constructing a node whose class and children match an
    existing one returns that same object, so structurally equal trees
    are pointer-identical within one build.  Consing is sound only
    because nodes are immutable after construction — rewriting code
    must reconstruct, never mutate (``tests/frontend/test_hash_consing.py``
    enforces both properties).
    """

    __slots__ = ()

    dtype = DataType.INT
    is_index = False

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other):
        return BinOp("+", self, wrap(other))

    def __radd__(self, other):
        return BinOp("+", wrap(other), self)

    def __sub__(self, other):
        return BinOp("-", self, wrap(other))

    def __rsub__(self, other):
        return BinOp("-", wrap(other), self)

    def __mul__(self, other):
        return BinOp("*", self, wrap(other))

    def __rmul__(self, other):
        return BinOp("*", wrap(other), self)

    def __truediv__(self, other):
        return BinOp("/", self, wrap(other))

    def __rtruediv__(self, other):
        return BinOp("/", wrap(other), self)

    def __mod__(self, other):
        return BinOp("%", self, wrap(other))

    def __neg__(self):
        return UnOp("neg", self)

    def __abs__(self):
        return UnOp("abs", self)

    def __and__(self, other):
        return BinOp("&", self, wrap(other))

    def __or__(self, other):
        return BinOp("|", self, wrap(other))

    def __xor__(self, other):
        return BinOp("^", self, wrap(other))

    def __lshift__(self, other):
        return BinOp("<<", self, wrap(other))

    def __rshift__(self, other):
        return BinOp(">>", self, wrap(other))

    def __invert__(self):
        return UnOp("not", self)

    # -- comparisons ---------------------------------------------------
    def __eq__(self, other):  # noqa: D105 - DSL operator
        return Compare("==", self, wrap(other))

    def __ne__(self, other):
        return Compare("!=", self, wrap(other))

    def __lt__(self, other):
        return Compare("<", self, wrap(other))

    def __le__(self, other):
        return Compare("<=", self, wrap(other))

    def __gt__(self, other):
        return Compare(">", self, wrap(other))

    def __ge__(self, other):
        return Compare(">=", self, wrap(other))

    __hash__ = None


def wrap(value):
    """Coerce a Python number into a :class:`Const` expression."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):
        return Const(int(value), DataType.INT)
    if isinstance(value, int):
        return Const(value, DataType.INT)
    if isinstance(value, float):
        return Const(value, DataType.FLOAT)
    raise TypeError("cannot use %r in a DSL expression" % (value,))


class Const(Expr):
    """A literal constant."""

    __slots__ = ("value", "dtype")

    def __new__(cls, value, dtype):
        return cons(
            cls, (cls, type(value), value, dtype), lambda: object.__new__(cls)
        )

    def __init__(self, value, dtype):
        self.value = value
        self.dtype = dtype

    def __repr__(self):
        return "Const(%r)" % (self.value,)


class VarRef(Expr):
    """A register-resident scalar variable."""

    __slots__ = ("register", "dtype", "is_index")

    def __new__(cls, register):
        return cons(cls, (cls, id(register)), lambda: object.__new__(cls))

    def __init__(self, register):
        self.register = register
        self.dtype = register.data_type
        self.is_index = register.rclass is RegClass.ADDR

    def __repr__(self):
        return "VarRef(%r)" % (self.register,)


class ArrayRef(Expr):
    """A subscripted symbol reference ``sym[index]``; load or store target."""

    __slots__ = ("symbol", "index", "dtype")

    def __new__(cls, symbol, index):
        index = wrap(index)
        return cons(
            cls, (cls, id(symbol), id(index)), lambda: object.__new__(cls)
        )

    def __init__(self, symbol, index):
        self.symbol = symbol
        self.index = wrap(index)
        self.dtype = symbol.data_type

    def __repr__(self):
        return "ArrayRef(%s, %r)" % (self.symbol.name, self.index)


class BinOp(Expr):
    __slots__ = ("operator", "left", "right", "dtype", "is_index")

    _FLOAT_PROMOTING = {"+", "-", "*", "/"}

    def __new__(cls, operator, left, right):
        return cons(
            cls, (cls, operator, id(left), id(right)),
            lambda: object.__new__(cls),
        )

    def __init__(self, operator, left, right):
        self.operator = operator
        self.left = left
        self.right = right
        if operator in ("fmin", "fmax"):
            self.dtype = DataType.FLOAT
        elif operator in self._FLOAT_PROMOTING and (
            left.dtype is DataType.FLOAT or right.dtype is DataType.FLOAT
        ):
            self.dtype = DataType.FLOAT
        elif operator == "/":
            self.dtype = left.dtype
        else:
            self.dtype = DataType.INT
        self.is_index = (
            self.dtype is DataType.INT and left.is_index or right.is_index
        ) and operator in ("+", "-", "*")

    def __repr__(self):
        return "(%r %s %r)" % (self.left, self.operator, self.right)


class UnOp(Expr):
    __slots__ = ("operator", "operand", "dtype")

    def __new__(cls, operator, operand):
        return cons(
            cls, (cls, operator, id(operand)), lambda: object.__new__(cls)
        )

    def __init__(self, operator, operand):
        self.operator = operator
        self.operand = operand
        self.dtype = operand.dtype
        if operator in ("not",):
            self.dtype = DataType.INT

    def __repr__(self):
        return "%s(%r)" % (self.operator, self.operand)


class Compare(Expr):
    """A comparison; always yields an INT 0/1 value."""

    __slots__ = ("operator", "left", "right", "dtype")

    def __new__(cls, operator, left, right):
        return cons(
            cls, (cls, operator, id(left), id(right)),
            lambda: object.__new__(cls),
        )

    def __init__(self, operator, left, right):
        self.operator = operator
        self.left = left
        self.right = right
        self.dtype = DataType.INT

    def __repr__(self):
        return "(%r %s %r)" % (self.left, self.operator, self.right)


class MathCall(Expr):
    """A unary math intrinsic lowered to a single FPU op (e.g. sqrt)."""

    __slots__ = ("name", "operand", "dtype")

    _OPCODES = {"sqrt": OpCode.FSQRT, "fabs": OpCode.FABS}

    def __new__(cls, name, operand):
        operand = wrap(operand)
        return cons(
            cls, (cls, name, id(operand)), lambda: object.__new__(cls)
        )

    def __init__(self, name, operand):
        if name not in self._OPCODES:
            raise ValueError("unknown intrinsic %r" % name)
        self.name = name
        self.operand = wrap(operand)
        self.dtype = DataType.FLOAT

    @property
    def opcode(self):
        return self._OPCODES[self.name]


def sqrt(value):
    """Square-root intrinsic (single FPU operation on the model machine)."""
    return MathCall("sqrt", value)


def fmin(a, b):
    return BinOp("fmin", wrap(a), wrap(b))


def fmax(a, b):
    return BinOp("fmax", wrap(a), wrap(b))


def imin(a, b):
    """Integer minimum (a single MIN operation on a data unit)."""
    return BinOp("min", wrap(a), wrap(b))


def imax(a, b):
    """Integer maximum (a single MAX operation on a data unit)."""
    return BinOp("max", wrap(a), wrap(b))


class CallExpr(Expr):
    """A call to another DSL function, usable as a value.

    Not consed: a call is an effect site, and every textual occurrence
    must lower to its own CALL operation regardless of argument shape.
    """

    __slots__ = ("handle", "args", "dtype")

    def __init__(self, handle, args):
        self.handle = handle
        self.args = [wrap(a) for a in args]
        self.dtype = handle.return_type if handle.return_type else DataType.INT


_INT_BINOPS = {
    "+": OpCode.ADD,
    "-": OpCode.SUB,
    "*": OpCode.MUL,
    "/": OpCode.DIV,
    "%": OpCode.MOD,
    "&": OpCode.AND,
    "|": OpCode.OR,
    "^": OpCode.XOR,
    "<<": OpCode.SHL,
    ">>": OpCode.SHR,
    "min": OpCode.MIN,
    "max": OpCode.MAX,
}

_FLOAT_BINOPS = {
    "+": OpCode.FADD,
    "-": OpCode.FSUB,
    "*": OpCode.FMUL,
    "/": OpCode.FDIV,
    "fmin": OpCode.FMIN,
    "fmax": OpCode.FMAX,
}

_ADDR_BINOPS = {"+": OpCode.AADD, "-": OpCode.ASUB, "*": OpCode.AMUL}

_INT_COMPARES = {
    "==": OpCode.CMPEQ,
    "!=": OpCode.CMPNE,
    "<": OpCode.CMPLT,
    "<=": OpCode.CMPLE,
    ">": OpCode.CMPGT,
    ">=": OpCode.CMPGE,
}

_FLOAT_COMPARES = {
    "==": OpCode.FCMPEQ,
    "!=": OpCode.FCMPNE,
    "<": OpCode.FCMPLT,
    "<=": OpCode.FCMPLE,
    ">": OpCode.FCMPGT,
    ">=": OpCode.FCMPGE,
}

_ADDR_COMPARES = {
    "==": OpCode.ACMPEQ,
    "!=": OpCode.ACMPNE,
    "<": OpCode.ACMPLT,
    "<=": OpCode.ACMPLE,
    ">": OpCode.ACMPGT,
    ">=": OpCode.ACMPGE,
}


class Lowerer:
    """Lowers :class:`Expr` trees into operations appended via *emit*.

    The function builder supplies ``emit`` (append an operation to the
    current block), ``new_register`` and ``constant`` (hoisted constant
    materialization).
    """

    __slots__ = ("fb",)

    def __init__(self, function_builder):
        self.fb = function_builder

    # ------------------------------------------------------------------
    def as_value(self, expr, want=None):
        """Lower *expr*, returning a register (or immediate) operand.

        ``want`` optionally names the register class the consumer needs;
        a register-file transfer is inserted when the value lives in a
        different file.
        """
        expr = wrap(expr)
        operand = self._lower(expr)
        if want is not None:
            operand = self._transfer(operand, want)
        return operand

    def as_index(self, expr):
        """Lower *expr* for use as a memory index (ADDR file or immediate).

        Affine indices in enclosing counted-loop indices are strength-
        reduced to induction registers (see ``FunctionBuilder.reduce_index``)
        so that inner-loop memory operations need no address arithmetic on
        their critical path.
        """
        expr = wrap(expr)
        if isinstance(expr, Const):
            return self._index_immediate(expr)
        reduced = self.fb.reduce_index(expr)
        if reduced is not None:
            return reduced
        return self.as_value(expr, want=RegClass.ADDR)

    @staticmethod
    def _index_immediate(const):
        if const.dtype is DataType.FLOAT:
            raise TypeError(
                "float immediate %r cannot be used as an array index"
                % (const.value,)
            )
        return Immediate(int(const.value), DataType.INT)

    def as_address(self, expr):
        """Lower *expr* as a memory address: ``(base, offset_or_None)``.

        Sums that cannot be strength-reduced use the model architecture's
        indexed addressing mode (the DSP56001's ``(Rn+Nn)``): the memory
        unit adds a base register and an offset operand itself, so e.g.
        ``table[p]`` and ``table[p + 1]`` become same-depth accesses with
        no address arithmetic in between.
        """
        expr = wrap(expr)
        if isinstance(expr, Const):
            return self._index_immediate(expr), None
        reduced = self.fb.reduce_index(expr)
        if reduced is not None:
            return reduced, None
        if isinstance(expr, BinOp) and expr.operator in ("+", "-"):
            left, right = expr.left, expr.right
            if expr.operator == "-" and isinstance(right, Const):
                right = Const(-int(right.value), DataType.INT)
                expr = BinOp("+", left, right)
            if expr.operator == "+":
                base, offset = self._split_address(expr.left, expr.right)
                if base is not None:
                    return base, offset
        return self.as_value(expr, want=RegClass.ADDR), None

    def _split_address(self, left, right):
        """Try to lower ``left + right`` as (base register, offset)."""
        if isinstance(left, Const):
            left, right = right, left
        if left.dtype is not DataType.INT or right.dtype is not DataType.INT:
            return None, None
        base = self.as_value(left, want=RegClass.ADDR)
        if isinstance(base, Immediate):
            return None, None
        if isinstance(right, Const):
            return base, Immediate(int(right.value), DataType.INT)
        offset = self.as_value(right, want=RegClass.ADDR)
        if isinstance(offset, Immediate):
            offset = Immediate(int(offset.value), DataType.INT)
        return base, offset

    def into(self, expr, dest):
        """Lower *expr* into the existing register *dest*.

        Recognizes the multiply-accumulate idiom ``dest + a * b`` (in either
        operand order) on floats and emits a single ``FMAC``.  When the
        expression's root operation computes in *dest*'s register class,
        the root writes *dest* directly (copy propagation) instead of
        going through a temporary and a move.
        """
        expr = wrap(expr)
        mac = self._match_mac(expr, dest)
        if mac is not None:
            a, b = mac
            src_a = self.as_value(a, want=RegClass.FLOAT)
            src_b = self.as_value(b, want=RegClass.FLOAT)
            self.fb.emit(Operation(OpCode.FMAC, dest=dest, sources=(src_a, src_b)))
            return dest
        if isinstance(expr, ArrayRef):
            load_class = (
                RegClass.FLOAT
                if expr.symbol.data_type is DataType.FLOAT
                else RegClass.INT
            )
            # Memory words load into any register file over the data buses
            # (paper Figure 2), so an integer load may target an address
            # register directly — the DSP56001's MOVE X:(R0),R1 idiom.
            if load_class is dest.rclass or (
                load_class is RegClass.INT and dest.rclass is RegClass.ADDR
            ):
                return self._lower_load(expr, dest=dest)
        elif isinstance(expr, BinOp) and self._domain(expr) is dest.rclass:
            return self._lower_binop(expr, dest=dest)
        elif isinstance(expr, UnOp) and dest.rclass in (
            RegClass.FLOAT if expr.dtype is DataType.FLOAT else RegClass.INT,
        ):
            return self._lower_unop(expr, dest=dest)
        elif isinstance(expr, Compare) and dest.rclass is RegClass.INT:
            return self._lower_compare(expr, dest=dest)
        elif isinstance(expr, MathCall) and dest.rclass is RegClass.FLOAT:
            src = self.as_value(expr.operand, want=RegClass.FLOAT)
            self.fb.emit(Operation(expr.opcode, dest=dest, sources=(src,)))
            return dest
        operand = self.as_value(expr, want=dest.rclass)
        if operand is not dest:
            self._emit_move(dest, operand)
        return dest

    # ------------------------------------------------------------------
    def _match_mac(self, expr, dest):
        if dest.rclass is not RegClass.FLOAT:
            return None
        if not isinstance(expr, BinOp) or expr.operator != "+":
            return None
        for acc, other in ((expr.left, expr.right), (expr.right, expr.left)):
            if (
                isinstance(acc, VarRef)
                and acc.register is dest
                and isinstance(other, BinOp)
                and other.operator == "*"
                and other.dtype is DataType.FLOAT
            ):
                return (other.left, other.right)
        return None

    def _emit_move(self, dest, operand):
        if isinstance(operand, Immediate):
            opcode = {
                RegClass.INT: OpCode.CONST,
                RegClass.FLOAT: OpCode.FCONST,
                RegClass.ADDR: OpCode.ACONST,
            }[dest.rclass]
            value = (
                float(operand.value)
                if dest.rclass is RegClass.FLOAT
                else int(operand.value)
            )
            self.fb.emit(Operation(opcode, dest=dest, sources=(Immediate(value),)))
            return
        if operand.rclass is dest.rclass:
            opcode = {
                RegClass.INT: OpCode.MOV,
                RegClass.FLOAT: OpCode.FMOV,
                RegClass.ADDR: OpCode.AMOV,
            }[dest.rclass]
            self.fb.emit(Operation(opcode, dest=dest, sources=(operand,)))
            return
        transferred = self._transfer(operand, dest.rclass)
        if transferred is not dest:
            self._emit_move(dest, transferred)

    def _transfer(self, operand, want):
        """Move *operand* into register class *want* if it is elsewhere."""
        if isinstance(operand, Immediate):
            if want is RegClass.FLOAT and operand.data_type is DataType.INT:
                return Immediate(float(operand.value), DataType.FLOAT)
            if want is not RegClass.FLOAT and operand.data_type is DataType.FLOAT:
                raise TypeError("float immediate %r used as integer" % operand)
            return operand
        if operand.rclass is want:
            return operand
        dest = self.fb.new_register(want)
        opcode = {
            (RegClass.INT, RegClass.ADDR): OpCode.MOVIA,
            (RegClass.ADDR, RegClass.INT): OpCode.MOVAI,
            (RegClass.INT, RegClass.FLOAT): OpCode.ITOF,
            (RegClass.FLOAT, RegClass.INT): OpCode.FTOI,
        }.get((operand.rclass, want))
        if opcode is None:
            # ADDR <-> FLOAT goes through the integer file.
            mid = self._transfer(operand, RegClass.INT)
            return self._transfer(mid, want)
        self.fb.emit(Operation(opcode, dest=dest, sources=(operand,)))
        return dest

    # ------------------------------------------------------------------
    def _lower(self, expr):
        if isinstance(expr, Const):
            if expr.dtype is DataType.FLOAT:
                return Immediate(float(expr.value), DataType.FLOAT)
            return Immediate(int(expr.value), DataType.INT)
        if isinstance(expr, VarRef):
            return expr.register
        if isinstance(expr, ArrayRef):
            return self._lower_load(expr)
        if isinstance(expr, BinOp):
            return self._lower_binop(expr)
        if isinstance(expr, UnOp):
            return self._lower_unop(expr)
        if isinstance(expr, Compare):
            return self._lower_compare(expr)
        if isinstance(expr, MathCall):
            src = self.as_value(expr.operand, want=RegClass.FLOAT)
            dest = self.fb.new_register(RegClass.FLOAT)
            self.fb.emit(Operation(expr.opcode, dest=dest, sources=(src,)))
            return dest
        if isinstance(expr, CallExpr):
            return self.fb.lower_call(expr)
        raise TypeError("cannot lower %r" % (expr,))

    def _lower_load(self, ref, dest=None):
        base, offset = self.as_address(ref.index)
        if dest is None:
            rclass = (
                RegClass.FLOAT
                if ref.symbol.data_type is DataType.FLOAT
                else RegClass.INT
            )
            dest = self.fb.new_register(rclass)
        sources = (base,) if offset is None else (base, offset)
        self.fb.emit(
            Operation(OpCode.LOAD, dest=dest, sources=sources, symbol=ref.symbol)
        )
        return dest

    def _domain(self, expr):
        """Pick the register-class domain an expression computes in."""
        if expr.dtype is DataType.FLOAT:
            return RegClass.FLOAT
        if expr.is_index:
            return RegClass.ADDR
        return RegClass.INT

    def _lower_binop(self, expr, dest=None):
        domain = self._domain(expr)
        if domain is RegClass.FLOAT:
            table, const_ok = _FLOAT_BINOPS, True
        elif domain is RegClass.ADDR:
            table, const_ok = _ADDR_BINOPS, True
        else:
            table, const_ok = _INT_BINOPS, True
        if expr.operator not in table:
            # e.g. "%" on an index expression: fall back to the integer unit.
            domain = RegClass.INT
            table = _INT_BINOPS
        left = self.as_value(expr.left, want=domain)
        right = self.as_value(expr.right, want=domain)
        if isinstance(left, Immediate) and const_ok:
            # Keep at most one immediate operand, in the right slot when
            # the operator commutes; otherwise materialize it.
            info_commutes = expr.operator in ("+", "*", "&", "|", "^")
            if info_commutes and not isinstance(right, Immediate):
                left, right = right, left
            else:
                left = self._materialize(left, domain)
        if isinstance(left, Immediate) and isinstance(right, Immediate):
            left = self._materialize(left, domain)
        if dest is None or dest.rclass is not domain:
            dest = self.fb.new_register(domain)
        self.fb.emit(Operation(table[expr.operator], dest=dest, sources=(left, right)))
        return dest

    def _materialize(self, immediate, domain):
        return self.fb.constant(immediate.value, domain)

    def _lower_unop(self, expr, dest=None):
        domain = self._domain(expr)
        if domain is RegClass.FLOAT:
            table = {"neg": OpCode.FNEG, "abs": OpCode.FABS}
        else:
            domain = RegClass.INT
            table = {"neg": OpCode.NEG, "abs": OpCode.ABS, "not": OpCode.NOT}
        src = self.as_value(expr.operand, want=domain)
        if isinstance(src, Immediate):
            src = self._materialize(src, domain)
        if dest is None or dest.rclass is not domain:
            dest = self.fb.new_register(domain)
        self.fb.emit(Operation(table[expr.operator], dest=dest, sources=(src,)))
        return dest

    def _lower_compare(self, expr, dest=None):
        if (
            expr.left.dtype is DataType.FLOAT
            or expr.right.dtype is DataType.FLOAT
        ):
            domain, table = RegClass.FLOAT, _FLOAT_COMPARES
        elif expr.left.is_index or expr.right.is_index:
            domain, table = RegClass.ADDR, _ADDR_COMPARES
        else:
            domain, table = RegClass.INT, _INT_COMPARES
        left = self.as_value(expr.left, want=domain)
        right = self.as_value(expr.right, want=domain)
        if isinstance(left, Immediate):
            left = self._materialize(left, domain)
        if dest is None or dest.rclass is not RegClass.INT:
            dest = self.fb.new_register(RegClass.INT)
        self.fb.emit(Operation(table[expr.operator], dest=dest, sources=(left, right)))
        return dest
