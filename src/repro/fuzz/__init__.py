"""Differential fuzzing: generative coverage for the whole pipeline.

The reproduction's correctness story rests on two equivalence surfaces:

* every allocation strategy (None/CB/Pr/Dup/Ideal) must preserve program
  semantics — only cycle counts may change;
* both simulator backends (reference interpreter and threaded code) must
  be bit-identical on every program.

This package guards both generatively instead of by hand-picked cases:

:mod:`repro.fuzz.generator`
    a seeded, serializable recipe grammar driving
    :class:`~repro.frontend.ProgramBuilder` (nested loops, conditionals,
    calls, local/global arrays, duplicated-array store patterns,
    interrupt toggling);
:mod:`repro.fuzz.oracle`
    compiles each recipe under every strategy x every backend and checks
    result equality, cycle ordering, and duplicated-copy coherence;
:mod:`repro.fuzz.shrink`
    recipe-level delta debugging that minimizes a failing case and emits
    a ready-to-paste pytest regression;
:mod:`repro.fuzz.campaign`
    the ``python -m repro fuzz`` driver fanning seeds over worker
    processes and writing failures to ``tests/fuzz_corpus/``.
"""

from repro.fuzz.generator import Recipe, build_module, generate_recipe
from repro.fuzz.oracle import ORACLE_STRATEGIES, OracleViolation, check_recipe
from repro.fuzz.shrink import emit_regression, shrink_recipe, statement_count

__all__ = [
    "ORACLE_STRATEGIES",
    "OracleViolation",
    "Recipe",
    "build_module",
    "check_recipe",
    "emit_regression",
    "generate_recipe",
    "shrink_recipe",
    "statement_count",
]
