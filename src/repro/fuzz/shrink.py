"""Recipe-level delta debugging: minimize a failing fuzz case.

The shrinker never touches IR — it mutates the *recipe* (a small JSON
document) and relies on :func:`repro.fuzz.generator.build_module`'s
clamping to keep every mutant a valid program.  Passes, applied to a
fixpoint:

1. **Statement deletion** — ddmin-style: first halves of each statement
   list, then single statements, recursing into nested loop/branch
   bodies and helper bodies.
2. **Structure collapse** — replace a wrapper loop by its body, drop an
   else branch, drop the interrupt hook, drop unreferenced helpers and
   arrays (remapping surviving indices).
3. **Integer shrinking** — pull every numeric field (trip counts, lags,
   thresholds, scalar operands) toward 1.

``is_failing`` is an arbitrary predicate, so the same machinery serves
the real oracle, an injected-bug oracle in the test suite, and any
future invariant.  The result is the smallest recipe the passes can
reach that still fails, ready for :func:`emit_regression`.
"""

import copy
import hashlib

from repro.fuzz.generator import Recipe, _count_body, _nested_bodies


def statement_count(recipe):
    """Total statements in the recipe (main body, nested, helpers)."""
    return _count_body(recipe.body) + sum(
        len(helper) for helper in recipe.helpers
    )


def shrink_recipe(recipe, is_failing, max_rounds=25):
    """Smallest failing recipe reachable from *recipe* via the passes.

    ``is_failing(recipe) -> bool`` must be deterministic and must return
    True for *recipe* itself; the shrinker only ever keeps mutants that
    still fail, so the result reproduces the original failure.
    """
    if not is_failing(recipe):
        raise ValueError("shrink_recipe needs a failing recipe to start from")
    current = recipe.to_dict()

    def fails(candidate):
        return is_failing(Recipe.from_dict(candidate))

    for _round in range(max_rounds):
        progress = False
        for one_pass in (_delete_pass, _collapse_pass, _integer_pass):
            candidate, changed = one_pass(current, fails)
            if changed:
                current = candidate
                progress = True
        if not progress:
            break
    return Recipe.from_dict(current)


# ----------------------------------------------------------------------
# Pass 1: statement deletion
# ----------------------------------------------------------------------
def _bodies(data):
    """Paths of every statement list in the recipe, outermost first.

    A path is a tuple of keys/indices navigating ``data`` to a list of
    statements: ``("body",)``, ``("helpers", 0)``,
    ``("body", 2, 2)`` (the nested body of a wrapper), ...
    """
    paths = [("body",)]
    for position in range(len(data["helpers"])):
        paths.append(("helpers", position))
    stack = [(("body",), data["body"])]
    while stack:
        path, body = stack.pop()
        for position, stmt in enumerate(body):
            if not isinstance(stmt, list) or not stmt:
                continue
            kind = stmt[0]
            slots = []
            if kind in ("loop", "swloop"):
                slots = [2]
            elif kind == "branch":
                slots = [2] + ([3] if stmt[3] else [])
            for slot in slots:
                nested_path = path + (position, slot)
                paths.append(nested_path)
                stack.append((nested_path, stmt[slot]))
    return paths


def _resolve(data, path):
    node = data
    for key in path:
        node = node[key]
    return node


def _delete_pass(data, fails):
    changed = False
    # Revisit paths after every successful deletion: indices shift.
    stable = False
    while not stable:
        stable = True
        for path in _bodies(data):
            body = _resolve(data, path)
            candidate, removed = _ddmin_list(data, path, body, fails)
            if removed:
                data = candidate
                changed = True
                stable = False
                break
    return data, changed


def _ddmin_list(data, path, body, fails):
    """Try removing chunks (halves first, then singles) from one list."""
    length = len(body)
    if length == 0:
        return data, False
    chunks = []
    if length >= 4:
        half = length // 2
        chunks.append((0, half))
        chunks.append((half, length))
    chunks.extend((position, position + 1) for position in range(length))
    for start, stop in chunks:
        if stop - start == length and path == ("body",):
            continue  # an empty main body cannot fail interestingly
        candidate = copy.deepcopy(data)
        target = _resolve(candidate, path)
        del target[start:stop]
        if fails(candidate):
            return candidate, True
    return data, False


# ----------------------------------------------------------------------
# Pass 2: structure collapse
# ----------------------------------------------------------------------
def _collapse_pass(data, fails):
    changed = False
    for mutate in (
        _try_drop_interrupt,
        _try_hoist_wrappers,
        _try_drop_else,
        _try_drop_helpers,
        _try_drop_arrays,
    ):
        stable = False
        while not stable:
            candidate = mutate(data)
            if candidate is not None and fails(candidate):
                data = candidate
                changed = True
            else:
                stable = True
    return data, changed


def _try_drop_interrupt(data):
    if data.get("interrupt_period") is None:
        return None
    candidate = copy.deepcopy(data)
    candidate["interrupt_period"] = None
    return candidate


def _wrapper_positions(data):
    for path in _bodies(data):
        body = _resolve(data, path)
        for position, stmt in enumerate(body):
            if isinstance(stmt, list) and stmt and stmt[0] in (
                "loop",
                "swloop",
                "branch",
            ):
                yield path, position, stmt


def _try_hoist_wrappers(data):
    """Replace the first hoistable wrapper by its own body."""
    for path, position, stmt in _wrapper_positions(data):
        candidate = copy.deepcopy(data)
        body = _resolve(candidate, path)
        inner = stmt[2] if stmt[0] != "branch" else stmt[2] + (stmt[3] or [])
        body[position : position + 1] = copy.deepcopy(inner)
        return candidate
    return None


def _try_drop_else(data):
    for path, position, stmt in _wrapper_positions(data):
        if stmt[0] == "branch" and stmt[3]:
            candidate = copy.deepcopy(data)
            _resolve(candidate, path)[position][3] = None
            return candidate
    return None


def _each_statement(data):
    for path in _bodies(data):
        for stmt in _resolve(data, path):
            yield stmt


def _try_drop_helpers(data):
    """Drop the highest unreferenced helper, remapping call indices."""
    count = len(data["helpers"])
    if not count:
        return None
    referenced = {
        int(stmt[1]) % count
        for stmt in _each_statement(data)
        if stmt and stmt[0] == "call"
    }
    for victim in range(count - 1, -1, -1):
        if victim in referenced:
            continue
        candidate = copy.deepcopy(data)
        del candidate["helpers"][victim]
        for stmt in _each_statement(candidate):
            if stmt and stmt[0] == "call":
                index = int(stmt[1]) % count
                stmt[1] = index - 1 if index > victim else index
        return candidate
    return None


_ARRAY_FIELDS = {
    "store": (1,),
    "dot": (1, 2),
    "autocorr": (1,),
    "update": (1, 2),
    "cond": (1,),
    "writeback": (1,),
    "nest": (1, 2),
    "dupstore": (1,),
    "localmix": (1,),
}


def _try_drop_arrays(data):
    """Drop the highest unreferenced global array, remapping indices."""
    count = len(data["arrays"])
    if count <= 1:
        return None
    referenced = set()
    for stmt in _each_statement(data):
        for field in _ARRAY_FIELDS.get(stmt[0], ()):
            referenced.add(int(stmt[field]) % count)
    for victim in range(count - 1, -1, -1):
        if victim in referenced:
            continue
        candidate = copy.deepcopy(data)
        del candidate["arrays"][victim]
        for stmt in _each_statement(candidate):
            for field in _ARRAY_FIELDS.get(stmt[0], ()):
                index = int(stmt[field]) % count
                stmt[field] = index - 1 if index > victim else index
        return candidate
    return None


# ----------------------------------------------------------------------
# Pass 3: integer shrinking
# ----------------------------------------------------------------------
#: per-kind positions of freely shrinkable integer fields
_INT_FIELDS = {
    "scalar": (2,),
    "store": (2, 3),
    "dot": (3,),
    "autocorr": (2, 3),
    "update": (3, 4),
    "cond": (2, 3),
    "writeback": (2,),
    "nest": (3, 4),
    "dupstore": (2, 3),
    "localmix": (2,),
    "call": (2,),
    "loop": (1,),
    "swloop": (1,),
    "branch": (1,),
}


def _integer_pass(data, fails):
    changed = False
    stable = False
    while not stable:
        stable = True
        for path in _bodies(data):
            body = _resolve(data, path)
            for position, stmt in enumerate(body):
                for field in _INT_FIELDS.get(stmt[0], ()):
                    value = int(stmt[field])
                    for smaller in _shrink_candidates(value):
                        candidate = copy.deepcopy(data)
                        _resolve(candidate, path)[position][field] = smaller
                        if fails(candidate):
                            data = candidate
                            changed = True
                            stable = False
                            break
                    if not stable:
                        break
                if not stable:
                    break
            if not stable:
                break
    return data, changed


def _shrink_candidates(value):
    """Smaller replacement values to try, most aggressive first."""
    candidates = []
    for smaller in (1, value // 2, value - 1):
        if 0 <= smaller < value and smaller not in candidates:
            candidates.append(smaller)
    return candidates


# ----------------------------------------------------------------------
# Regression emission
# ----------------------------------------------------------------------
_REGRESSION_TEMPLATE = '''"""Auto-generated fuzz regression (%(origin)s).

Replays a shrunk recipe through the full differential oracle; see
docs/internals.md ("The differential fuzzer") for the corpus workflow.
"""

from repro.fuzz.generator import Recipe
from repro.fuzz.oracle import check_recipe

RECIPE_JSON = %(json)r


def test_fuzz_regression_%(tag)s():
    check_recipe(Recipe.from_json(RECIPE_JSON))
'''


def recipe_tag(recipe):
    """A short stable identifier for file and test names."""
    return hashlib.sha256(recipe.to_json().encode()).hexdigest()[:10]


def emit_regression(recipe, origin="shrunk fuzz failure"):
    """Source of a self-contained pytest regression replaying *recipe*."""
    return _REGRESSION_TEMPLATE % {
        "origin": origin,
        "json": recipe.to_json(),
        "tag": recipe_tag(recipe),
    }
