"""Seeded, serializable program recipes for differential fuzzing.

A :class:`Recipe` is a small JSON document — array sizes, helper-function
bodies, a main body of statements, and an optional interrupt cadence —
from which :func:`build_module` deterministically reconstructs an IR
module via :class:`~repro.frontend.ProgramBuilder`.  The indirection is
what makes delta debugging possible: the shrinker mutates the *recipe*
(drop a statement, hoist a loop body, halve a trip count) and rebuilds,
instead of trying to mutate IR.

The grammar deliberately covers every front-end feature the allocation
pass and the simulators can disagree about:

* counted hardware loops, software (compare-and-branch) loops, nesting;
* conditionals, including conditionals inside loops and loops inside
  conditionals;
* function calls (helpers with a scalar parameter and return value);
* global arrays, a local (stack-resident) array, scalar register traffic;
* same-array offset reads (``a[i] * a[i + lag]``) and the paper's
  Figure 6 autocorrelation shape — stores into an array that is also
  read twice per cycle — which drive the duplication transform and its
  store-lock integrity protocol;
* an optional interrupt hook cadence, exercising the store-lock window
  and the fast backend's per-instruction fallback path.

Every statement is a plain list (JSON-friendly), every numeric field is
a small non-negative integer, and :func:`build_module` clamps all
derived quantities into bounds — so *any* recipe produced by mutating
integer fields or deleting statements is still a valid program.  That
closure property is what lets the shrinker move freely.
"""

import json
import random

from repro.frontend import ProgramBuilder

#: statements allowed inside helper functions and conditional bodies
SIMPLE_KINDS = ("scalar", "store", "dot", "autocorr")

#: statements allowed at any nesting level of the main body
LOOPY_KINDS = SIMPLE_KINDS + (
    "update",
    "cond",
    "writeback",
    "nest",
    "dupstore",
    "localmix",
)

#: wrapper statements carrying a nested body (main body only)
NESTED_KINDS = ("loop", "swloop", "branch")

#: size of the fixed output array every recipe writes
OUT_SIZE = 8

_SCALAR_OPS = ("+", "-", "*")


class Recipe:
    """A serializable description of one generated program."""

    VERSION = 1

    def __init__(self, seed, arrays, body, helpers=(), interrupt_period=None):
        #: generator seed (provenance only; the fields below are the truth)
        self.seed = seed
        #: element count of each global array ``arr0 .. arrN``
        self.arrays = [int(size) for size in arrays]
        #: main-body statement list (nested plain lists)
        self.body = list(body)
        #: helper-function bodies (each a list of SIMPLE statements)
        self.helpers = [list(h) for h in helpers]
        #: deliver an interrupt every N unlocked cycles (None = no hook)
        self.interrupt_period = interrupt_period

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self):
        return {
            "version": self.VERSION,
            "seed": self.seed,
            "arrays": list(self.arrays),
            "helpers": [list(h) for h in self.helpers],
            "body": list(self.body),
            "interrupt_period": self.interrupt_period,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(
            data.get("seed"),
            data["arrays"],
            data["body"],
            helpers=data.get("helpers", ()),
            interrupt_period=data.get("interrupt_period"),
        )

    def to_json(self):
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text):
        return cls.from_dict(json.loads(text))

    def __eq__(self, other):
        return isinstance(other, Recipe) and self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(self.to_json())

    def __repr__(self):
        return "<Recipe seed=%r arrays=%r statements=%d>" % (
            self.seed,
            self.arrays,
            _count_body(self.body) + sum(len(h) for h in self.helpers),
        )


def _count_body(body):
    total = 0
    for stmt in body:
        total += 1
        for nested in _nested_bodies(stmt):
            total += _count_body(nested)
    return total


def _nested_bodies(stmt):
    """The nested statement lists carried by a wrapper statement."""
    kind = stmt[0]
    if kind in ("loop", "swloop"):
        return [stmt[2]]
    if kind == "branch":
        bodies = [stmt[2]]
        if stmt[3]:
            bodies.append(stmt[3])
        return bodies
    return []


# ----------------------------------------------------------------------
# Generation
# ----------------------------------------------------------------------
def generate_recipe(seed, max_statements=6):
    """A random :class:`Recipe`; the same seed always yields the same
    recipe (and therefore, via :func:`build_module`, the same module)."""
    rng = random.Random(seed)
    arrays = [rng.randint(6, 12) for _ in range(rng.randint(2, 4))]
    helpers = [
        [_simple_statement(rng, arrays) for _ in range(rng.randint(1, 3))]
        for _ in range(rng.randint(0, 2))
    ]
    body = [
        _body_statement(rng, arrays, len(helpers), depth=0)
        for _ in range(rng.randint(1, max(1, max_statements)))
    ]
    period = rng.randint(2, 9) if rng.random() < 0.4 else None
    return Recipe(seed, arrays, body, helpers=helpers, interrupt_period=period)


def _simple_statement(rng, arrays):
    kind = rng.choice(SIMPLE_KINDS)
    a = rng.randrange(len(arrays))
    if kind == "scalar":
        return ["scalar", rng.randrange(len(_SCALAR_OPS)), rng.randint(1, 7)]
    if kind == "store":
        return ["store", a, rng.randint(0, 11), rng.randint(1, 7)]
    if kind == "dot":
        return ["dot", a, rng.randrange(len(arrays)), rng.randint(1, 6)]
    return ["autocorr", a, rng.randint(1, 3), rng.randint(1, 6)]


def _body_statement(rng, arrays, helper_count, depth):
    choices = list(LOOPY_KINDS)
    if helper_count:
        choices.append("call")
    if depth < 2:
        choices.extend(NESTED_KINDS)
    kind = rng.choice(choices)
    a = rng.randrange(len(arrays))
    b = rng.randrange(len(arrays))
    if kind in SIMPLE_KINDS:
        return _simple_statement(rng, arrays)
    if kind == "update":
        return ["update", a, b, rng.randint(1, 7), rng.randint(1, 6)]
    if kind == "cond":
        return ["cond", a, rng.randint(1, 7), rng.randint(1, 6)]
    if kind == "writeback":
        return ["writeback", b, rng.randint(1, 6)]
    if kind == "nest":
        return ["nest", a, b, rng.randint(1, 3), rng.randint(1, 4)]
    if kind == "dupstore":
        return ["dupstore", a, rng.randint(1, 3), rng.randint(1, 4)]
    if kind == "localmix":
        return ["localmix", a, rng.randint(1, 6)]
    if kind == "call":
        return ["call", rng.randrange(helper_count), rng.randint(1, 7)]
    if kind in ("loop", "swloop"):
        body = [
            _body_statement(rng, arrays, helper_count, depth + 1)
            for _ in range(rng.randint(1, 2))
        ]
        return [kind, rng.randint(0, 3), body]
    then_body = [_simple_statement(rng, arrays)]
    else_body = [_simple_statement(rng, arrays)] if rng.random() < 0.5 else None
    return ["branch", rng.randint(1, 7), then_body, else_body]


# ----------------------------------------------------------------------
# Module construction
# ----------------------------------------------------------------------
class _BuildContext:
    """Handles shared by the statement emitters for one function."""

    def __init__(self, f, arrays, out, acc, helpers):
        self.f = f
        self.arrays = arrays
        self.out = out
        self.acc = acc
        self.helpers = helpers
        self.local = None

    def array(self, index):
        return self.arrays[index % len(self.arrays)]

    def local_array(self):
        if self.local is None:
            self.local = self.f.local_array("scratch", OUT_SIZE)
        return self.local


def build_module(recipe, name="fuzz"):
    """Deterministically rebuild the IR module a recipe describes."""
    pb = ProgramBuilder(name)
    arrays = [
        pb.global_array(
            "arr%d" % position,
            max(2, size),
            float,
            init=[
                float((3 * position + 2 * offset) % 7) * 0.5 + 0.5
                for offset in range(max(2, size))
            ],
        )
        for position, size in enumerate(recipe.arrays)
    ]
    out = pb.global_array("out", OUT_SIZE, float)
    checksum = pb.global_scalar("checksum", float)

    helper_handles = []
    for position, body in enumerate(recipe.helpers):
        with pb.function(
            "helper%d" % position, params=(("x", float),), returns=float
        ) as f:
            hacc = f.float_var("hacc")
            f.assign(hacc, 0.0)
            context = _BuildContext(f, arrays, out, hacc, helper_handles)
            for stmt in body:
                _emit(stmt, context)
            f.ret(hacc + f.param("x"))
        helper_handles.append(pb.get("helper%d" % position))

    with pb.function("main") as f:
        acc = f.float_var("acc")
        f.assign(acc, 0.0)
        context = _BuildContext(f, arrays, out, acc, helper_handles)
        for stmt in recipe.body:
            _emit(stmt, context)
        f.assign(checksum[0], acc)
    return pb.build()


def _trips(requested, *limits):
    """Clamp a requested trip count into every array bound involved."""
    bound = min(limits) if limits else requested
    return max(0, min(int(requested), bound))


def _emit(stmt, context):
    kind = stmt[0]
    emitter = _EMITTERS.get(kind)
    if emitter is None:
        raise ValueError("unknown recipe statement kind %r" % (kind,))
    emitter(stmt, context)


def _emit_scalar(stmt, context):
    _kind, op, value = stmt[:3]
    operator = _SCALAR_OPS[int(op) % len(_SCALAR_OPS)]
    f, acc = context.f, context.acc
    if operator == "+":
        f.assign(acc, acc + float(value) * 0.5)
    elif operator == "-":
        f.assign(acc, acc - float(value) * 0.5)
    else:
        # keep multipliers small so long statement chains cannot reach
        # inf/nan (NaN would break the oracle's exact-equality compare)
        f.assign(acc, acc * (0.5 + float(value) * 0.125))


def _emit_store(stmt, context):
    _kind, a, index, value = stmt[:4]
    array = context.array(a)
    context.f.assign(array[int(index) % len(array)], float(value) * 0.25)


def _emit_dot(stmt, context):
    _kind, a, b, trips = stmt[:4]
    first, second = context.array(a), context.array(b)
    f, acc = context.f, context.acc
    with f.loop(_trips(trips, len(first), len(second))) as i:
        f.assign(acc, acc + first[i] * second[i])


def _emit_autocorr(stmt, context):
    _kind, a, lag, trips = stmt[:4]
    array = context.array(a)
    lag = max(1, min(int(lag), len(array) - 1))
    f, acc = context.f, context.acc
    with f.loop(_trips(trips, len(array) - lag)) as i:
        f.assign(acc, acc + array[i] * array[i + lag])


def _emit_update(stmt, context):
    _kind, a, b, value, trips = stmt[:5]
    target, source = context.array(a), context.array(b)
    f = context.f
    with f.loop(_trips(trips, len(target), len(source))) as i:
        f.assign(target[i], source[i] + float(value) * 0.5)


def _emit_cond(stmt, context):
    _kind, a, threshold, trips = stmt[:4]
    array = context.array(a)
    f, acc = context.f, context.acc
    with f.loop(_trips(trips, len(array))) as i:
        element = f.float_var()
        f.assign(element, array[i])
        with f.if_(element > float(threshold) * 0.5):
            f.assign(acc, acc + element)
        with f.else_():
            f.assign(acc, acc - 1.0)


def _emit_writeback(stmt, context):
    _kind, b, trips = stmt[:3]
    source = context.array(b)
    f, acc = context.f, context.acc
    with f.loop(_trips(trips, len(source), OUT_SIZE)) as i:
        f.assign(context.out[i], acc + source[i])


def _emit_nest(stmt, context):
    _kind, a, b, outer, inner = stmt[:5]
    first, second = context.array(a), context.array(b)
    outer = _trips(outer, len(second) - 1)
    inner = _trips(inner, len(first), len(second) - outer)
    f, acc = context.f, context.acc
    with f.loop(outer, name="m") as m:
        with f.loop(inner, name="n") as n:
            f.assign(acc, acc + first[n] * second[n + m])


def _emit_dupstore(stmt, context):
    """The paper's Figure 6 autocorrelation shape: stores into an array
    that same-cycle double reads later force into both banks — the
    pattern that exercises duplication plus its integrity stores."""
    _kind, a, outer, inner = stmt[:4]
    array = context.array(a)
    outer = _trips(outer, len(array) - 1)
    inner = _trips(inner, len(array) - outer)
    f, acc = context.f, context.acc
    with f.loop(_trips(outer + inner, len(array))) as i:
        f.assign(array[i], acc + 0.5)
    with f.loop(outer, name="m") as m:
        with f.loop(inner, name="n") as n:
            f.assign(acc, acc + array[n] * array[n + m])


def _emit_localmix(stmt, context):
    _kind, a, trips = stmt[:3]
    array = context.array(a)
    local = context.local_array()
    f, acc = context.f, context.acc
    count = _trips(trips, len(array), OUT_SIZE)
    with f.loop(count) as i:
        f.assign(local[i], array[i] + 1.0)
    with f.loop(count) as i:
        f.assign(acc, acc + local[i])


def _emit_call(stmt, context):
    _kind, helper, value = stmt[:3]
    if not context.helpers:
        return
    handle = context.helpers[int(helper) % len(context.helpers)]
    f, acc = context.f, context.acc
    f.assign(acc, acc + handle(float(value) * 0.5))


def _emit_loop(stmt, context):
    _kind, trips, body = stmt[:3]
    with context.f.loop(max(0, min(int(trips), 4))):
        for nested in body:
            _emit(nested, context)


def _emit_swloop(stmt, context):
    _kind, trips, body = stmt[:3]
    with context.f.for_range(0, max(0, min(int(trips), 4)), hw=False):
        for nested in body:
            _emit(nested, context)


def _emit_branch(stmt, context):
    _kind, threshold, then_body, else_body = stmt[:4]
    f, acc = context.f, context.acc
    with f.if_(acc > float(threshold) * 0.5):
        for nested in then_body:
            _emit(nested, context)
    if else_body:
        with f.else_():
            for nested in else_body:
                _emit(nested, context)


_EMITTERS = {
    "scalar": _emit_scalar,
    "store": _emit_store,
    "dot": _emit_dot,
    "autocorr": _emit_autocorr,
    "update": _emit_update,
    "cond": _emit_cond,
    "writeback": _emit_writeback,
    "nest": _emit_nest,
    "dupstore": _emit_dupstore,
    "localmix": _emit_localmix,
    "call": _emit_call,
    "loop": _emit_loop,
    "swloop": _emit_swloop,
    "branch": _emit_branch,
}
