"""The fuzz campaign driver behind ``python -m repro fuzz``.

Seeds ``seed .. seed + runs - 1`` are checked against the differential
oracle, fanned over worker processes via
:func:`repro.evaluation.parallel.parallel_map` (the same primitive the
figure/table regenerations use).  Workers ship back only (seed, failure
summary) pairs; everything a failure needs is reproducible from its
seed, so the parent re-runs, shrinks, and archives each failing case:

* ``<corpus>/recipe_<tag>.json`` — the shrunk recipe;
* ``<corpus>/test_regression_<tag>.py`` — a ready-to-paste pytest
  regression replaying it through the oracle.

Dropping the generated test into ``tests/fuzz_corpus/`` makes the case
part of tier-1 forever (``tests/fuzz/test_corpus_replay.py`` replays
every recipe in the corpus directory).
"""

import os

from repro.fuzz.generator import generate_recipe
from repro.fuzz.oracle import check_recipe
from repro.fuzz.shrink import (
    emit_regression,
    recipe_tag,
    shrink_recipe,
    statement_count,
)

#: default archive directory, relative to the repository root
DEFAULT_CORPUS = os.path.join("tests", "fuzz_corpus")


class FuzzFailure:
    """One failing seed: original and shrunk recipes plus the error."""

    def __init__(self, seed, recipe, error):
        self.seed = seed
        self.recipe = recipe
        #: ``(type name, message)`` of the original failure
        self.error = error
        self.shrunk = None
        #: paths written by :func:`archive_failure`
        self.files = []

    def __repr__(self):
        return "<FuzzFailure seed=%d %s>" % (self.seed, self.error[0])


def _failure_summary(exc):
    return (type(exc).__name__, str(exc))


def check_seed(seed, max_statements=6, backends=None, partitioners=None):
    """Worker entry point: oracle one seed; (seed, None) when it passes.

    ``backends`` restricts the oracle's backend-identity stage (None =
    the full :data:`~repro.fuzz.oracle.ORACLE_BACKENDS` set); the CLI's
    ``--backend B`` maps to ``("interp", B)`` — the reference plus the
    backend under test.  ``partitioners`` similarly restricts the
    partitioner-identity stage (None = the full
    :data:`~repro.fuzz.oracle.ORACLE_PARTITIONERS` registry); the CLI's
    ``--partitioner P`` maps to ``("greedy", P)``.
    """
    recipe = generate_recipe(seed, max_statements=max_statements)
    kwargs = {}
    if backends is not None:
        kwargs["backends"] = tuple(backends)
    if partitioners is not None:
        kwargs["partitioners"] = tuple(partitioners)
    try:
        check_recipe(recipe, **kwargs)
    except Exception as exc:  # any failure is a finding
        return seed, _failure_summary(exc)
    return seed, None


def _same_failure(recipe, kind):
    """Whether *recipe* still fails with the original exception type.

    Matching on the type keeps the shrinker from wandering onto an
    unrelated bug mid-minimization.
    """
    try:
        check_recipe(recipe)
    except Exception as exc:
        return type(exc).__name__ == kind
    return False


def shrink_failure(failure, max_statements=6):
    """Minimize one failure's recipe against the live oracle."""
    kind = failure.error[0]
    failure.shrunk = shrink_recipe(
        failure.recipe, lambda candidate: _same_failure(candidate, kind)
    )
    return failure.shrunk


def archive_failure(failure, corpus_dir):
    """Write the (shrunk, else original) recipe and its regression."""
    recipe = failure.shrunk or failure.recipe
    tag = recipe_tag(recipe)
    os.makedirs(corpus_dir, exist_ok=True)
    recipe_path = os.path.join(corpus_dir, "recipe_%s.json" % tag)
    with open(recipe_path, "w") as handle:
        handle.write(recipe.to_json() + "\n")
    test_path = os.path.join(corpus_dir, "test_regression_%s.py" % tag)
    origin = "seed %d, %s: %s" % (
        failure.seed,
        failure.error[0],
        failure.error[1][:120],
    )
    with open(test_path, "w") as handle:
        handle.write(emit_regression(recipe, origin=origin))
    failure.files = [recipe_path, test_path]
    return failure.files


def fuzz_campaign(
    runs,
    seed=0,
    jobs=None,
    max_statements=6,
    shrink=True,
    corpus_dir=DEFAULT_CORPUS,
    log=None,
    journal=None,
    timeout=None,
    backends=None,
    partitioners=None,
):
    """Run *runs* oracle checks; shrink and archive every failure.

    Returns the list of :class:`FuzzFailure` (empty on a clean campaign).
    ``jobs`` follows the ``--jobs`` convention of the evaluation runner
    (None/1 = serial, 0 resolved by the caller to all cores).  With a
    *journal* path or a per-seed *timeout*, the seeds run through the
    supervised runner instead (:func:`~repro.evaluation.parallel.
    supervised_map`): completed seeds checkpoint to the journal, so an
    interrupted campaign rerun with the same arguments resumes where it
    stopped, and hung or crashed workers are retried.  ``backends`` and
    ``partitioners`` restrict the corresponding oracle stages per
    :func:`check_seed`.
    """
    from repro.evaluation.parallel import parallel_map, supervised_map

    emit = log or (lambda message: None)
    seeds = range(seed, seed + runs)
    if backends is not None:
        backends = tuple(backends)
    if partitioners is not None:
        partitioners = tuple(partitioners)
    # A restricted partitioner set extends the task tuple (and so the
    # journal key); the default keeps the historical shape so existing
    # journals resume.
    extra = () if partitioners is None else (partitioners,)
    tasks = [(s, max_statements, backends) + extra for s in seeds]
    if journal is not None or timeout is not None:
        outcomes = supervised_map(
            check_seed, tasks, jobs=jobs,
            journal=journal, timeout=timeout, log=log,
        )
    else:
        outcomes = parallel_map(check_seed, tasks, jobs=jobs)
    failures = []
    for outcome_seed, summary in outcomes:
        if summary is None:
            continue
        recipe = generate_recipe(outcome_seed, max_statements=max_statements)
        failures.append(FuzzFailure(outcome_seed, recipe, summary))
    emit(
        "%d runs, %d oracle violation%s"
        % (runs, len(failures), "" if len(failures) == 1 else "s")
    )
    for failure in failures:
        emit(
            "seed %d failed: %s: %s"
            % (failure.seed, failure.error[0], failure.error[1][:200])
        )
        if shrink:
            shrunk = shrink_failure(failure, max_statements=max_statements)
            emit(
                "  shrunk %d -> %d statements"
                % (statement_count(failure.recipe), statement_count(shrunk))
            )
        if corpus_dir:
            for path in archive_failure(failure, corpus_dir):
                emit("  wrote %s" % path)
    return failures
