"""The differential oracle: one recipe, every strategy, every backend.

For each generated module the oracle checks, in order:

1. **Build determinism** — rebuilding the module from its recipe yields
   a fingerprint-identical module (the content key the compile cache and
   the shrinker both rely on).
2. **Strategy semantics** — under every strategy in
   :data:`ORACLE_STRATEGIES` the final value of every global symbol
   equals what the sequential IR walker (:class:`IRInterpreter`, the
   strategy-free reference) computes.
3. **Backend bit-identity** — for each strategy, the threaded-code
   and loop-specializing backends must match the reference interpreter
   exactly: cycles, operation total, per-pc execution counts, stack
   peaks, final memory and register files.  Recipes with an
   ``interrupt_period`` install a cadence-advertising
   :class:`InterruptInjector`, so the ``jit`` backend's chunked loop
   path (deliveries landing mid-loop) is exercised differentially.
4. **Duplication coherence** — after every run, both bank copies of
   every duplicated symbol are identical; when the recipe installs an
   interrupt hook, the :class:`InterruptInjector` additionally checks
   coherence at every delivery *during* the run (the store-lock window
   of paper Section 3.2).
5. **Cycle ordering** — ``Ideal <= strategy <= None`` for every
   partitioned strategy: dual-ported memory bounds every configuration
   from below, and no allocation strategy may lose to the single-bank
   baseline.
6. **Fault-outcome identity** (opt-in via ``fault_seed``) — with a
   seeded :class:`~repro.faults.plan.FaultPlan` armed, every backend
   classifies the faulted run identically (masked / detected / silent /
   crash / hang) and completed runs stay bit-identical — the
   cross-backend contract of :mod:`repro.faults.experiment`, checked
   differentially over fuzzer-generated programs.
7. **Partitioner identity** — under every partitioner in
   :data:`ORACLE_PARTITIONERS` (the full
   :data:`~repro.partition.registry.PARTITIONERS` registry) the
   partitioned strategies still match the sequential reference, both
   duplicate copies stay coherent, the ``Ideal <= strategy <= None``
   cycle ordering holds, and the observable program state — every
   global's final value — is bit-identical across partitioners: a
   partitioner may only move the cut cost, never program semantics.
   Because the exact solver participates, this stage also differentially
   pins the heuristics against a proved-optimal bank assignment on
   every fuzzed program.

Any violation raises :class:`OracleViolation` carrying the recipe, so a
failure is self-contained and replayable.
"""

from repro.compiler import compile_module
from repro.fuzz.generator import build_module
from repro.ir.interp import IRInterpreter
from repro.partition.strategies import Strategy
from repro.sim.fastsim import make_simulator
from repro.sim.interrupts import InterruptInjector
from repro.sim.simulator import SimulationError, Simulator
from repro.sim.tracing import collect_block_counts

#: the paper's five headline configurations (None/CB/Pr/Dup/Ideal)
ORACLE_STRATEGIES = (
    Strategy.SINGLE_BANK,
    Strategy.CB,
    Strategy.CB_PROFILE,
    Strategy.CB_DUP,
    Strategy.IDEAL,
)

#: every simulator backend, checked against each other per strategy
ORACLE_BACKENDS = ("interp", "fast", "jit", "batch")

#: every registered partitioner, checked against each other per recipe
#: (greedy first: it is the reference the others are compared against)
ORACLE_PARTITIONERS = ("greedy", "exact", "anneal", "kl")

#: strategies the partitioner stage re-runs: partitioned without and
#: with duplication (profile-driven CB behaves identically modulo edge
#: weights, which the property suite covers directly)
_PARTITIONED_STRATEGIES = (Strategy.CB, Strategy.CB_DUP)


class OracleViolation(AssertionError):
    """A recipe broke one of the oracle's invariants."""

    def __init__(self, stage, detail, recipe=None):
        super().__init__("%s: %s" % (stage, detail))
        #: which invariant failed (e.g. ``"strategy-semantics"``)
        self.stage = stage
        self.detail = detail
        #: the offending recipe (attached by :func:`check_recipe`)
        self.recipe = recipe


class OracleReport:
    """What a passing oracle run measured (for logs and tests)."""

    def __init__(self):
        #: strategy -> cycle count (reference backend)
        self.cycles = {}
        #: strategy -> names of duplicated symbols
        self.duplicated = {}
        #: interrupt deliveries summed over all runs
        self.interrupts_delivered = 0

    def __repr__(self):
        return "<OracleReport cycles=%r>" % (
            {s.name: c for s, c in self.cycles.items()},
        )


def _freeze(value):
    return tuple(value) if isinstance(value, list) else value


def _global_state(reader, module):
    return {
        symbol.name: _freeze(reader(symbol.name))
        for symbol in module.globals
    }


def _reference_state(recipe):
    module = build_module(recipe)
    interpreter = IRInterpreter(module)
    interpreter.run()
    return _global_state(interpreter.read_global, module)


def _profile_counts(recipe):
    compiled = compile_module(build_module(recipe), strategy=Strategy.SINGLE_BANK)
    simulator = Simulator(compiled.program)
    return collect_block_counts(compiled.program, simulator.run())


class _Observation:
    """Everything one (strategy, backend) run exposes for comparison."""

    def __init__(self, simulator, result):
        self.result = result
        self.memory = [list(bank) for bank in simulator.memory]
        self.registers = {
            rclass: list(values)
            for rclass, values in simulator.registers.items()
        }


def _run_config(recipe, strategy, backend, profile_counts,
                partitioner="greedy"):
    module = build_module(recipe)
    compiled = compile_module(
        module, strategy=strategy, profile_counts=profile_counts,
        partitioner=partitioner,
    )
    hook = None
    if recipe.interrupt_period:
        hook = InterruptInjector(
            compiled.program.module, period=recipe.interrupt_period
        )
    simulator = make_simulator(
        compiled.program, backend=backend, interrupt_hook=hook
    )
    result = simulator.run()
    return compiled, simulator, result, hook


def check_recipe(recipe, strategies=ORACLE_STRATEGIES, backends=ORACLE_BACKENDS,
                 fault_seed=None, partitioners=ORACLE_PARTITIONERS):
    """Run the full oracle over *recipe*; returns an :class:`OracleReport`.

    Raises :class:`OracleViolation` (with the recipe attached) on the
    first broken invariant, and re-raises simulator faults wrapped the
    same way so campaign drivers can treat every failure uniformly.
    A non-None *fault_seed* additionally runs the fault-outcome
    identity stage (:func:`check_fault_identity`).  *partitioners*
    selects the partitioner-identity stage's registry slice
    (:func:`check_partitioner_identity`); fewer than two entries skip
    the stage — one partitioner has nothing to differ from.
    """
    try:
        report = _check(recipe, strategies, backends)
        if partitioners is not None and len(partitioners) > 1:
            check_partitioner_identity(
                recipe, report, partitioners=partitioners
            )
        if fault_seed is not None:
            check_fault_identity(
                recipe, fault_seed, strategies=strategies, backends=backends
            )
        return report
    except OracleViolation as violation:
        violation.recipe = recipe
        raise


def check_fault_identity(recipe, fault_seed, strategies=ORACLE_STRATEGIES,
                         backends=ORACLE_BACKENDS):
    """Oracle stage 6: identical fault-outcome classification everywhere.

    For each strategy, arms the same seeded
    :class:`~repro.faults.plan.FaultPlan` (horizon = the fault-free
    cycle count) on every backend and asserts the
    :func:`repro.faults.experiment.comparable` projections agree —
    outcome class, injector record, and (for completed runs) the full
    architectural state digest.  Raises :class:`OracleViolation` with
    stage ``"fault-identity"`` on any divergence.
    """
    from repro.faults.experiment import comparable, reference_run, run_with_plan
    from repro.faults.plan import generate_plan

    profile = None
    for strategy in strategies:
        if strategy.needs_profile and profile is None:
            profile = _profile_counts(recipe)
        counts = profile if strategy.needs_profile else None
        results = {}
        for backend in backends:
            compiled = compile_module(
                build_module(recipe), strategy=strategy, profile_counts=counts
            )
            try:
                reference = reference_run(compiled.program, backend=backend)
                plan = generate_plan(fault_seed, horizon=reference[0])
                results[backend] = run_with_plan(
                    compiled.program, plan, backend=backend,
                    reference=reference,
                )
            except SimulationError as fault:
                raise OracleViolation(
                    "simulation-fault",
                    "%s/%s (fault stage): %s" % (strategy.name, backend, fault),
                    recipe=recipe,
                )
        first = backends[0]
        expected = comparable(results[first])
        for backend in backends[1:]:
            actual = comparable(results[backend])
            if actual != expected:
                raise OracleViolation(
                    "fault-identity",
                    "%s: fault seed %d classified %r on %s but %r on %s"
                    % (
                        strategy.name,
                        fault_seed,
                        results[first]["outcome"],
                        first,
                        results[backend]["outcome"],
                        backend,
                    ),
                    recipe=recipe,
                )


def check_partitioner_identity(recipe, report=None,
                               partitioners=ORACLE_PARTITIONERS,
                               backend="interp"):
    """Oracle stage 7: program semantics are partitioner-invariant.

    Re-runs the partitioned strategies (:data:`_PARTITIONED_STRATEGIES`)
    once per registry partitioner on the reference backend and asserts,
    per partitioner: the final value of every global matches the
    sequential IR reference, both bank copies of every duplicated symbol
    agree, and the ``Ideal <= strategy <= None`` cycle ordering holds
    (bounds taken from *report*, an :class:`OracleReport` from the main
    stages, when supplied — Ideal and None never partition, so their
    cycles are partitioner-independent).  Then asserts the observable
    state is bit-identical across partitioners: a partitioner may only
    move the cut cost, never what the program computes.  Raises
    :class:`OracleViolation` with stage ``"partitioner-identity"`` on
    any divergence.
    """
    reference = _reference_state(recipe)
    baseline = ideal = None
    if report is not None:
        baseline = report.cycles.get(Strategy.SINGLE_BANK)
        ideal = report.cycles.get(Strategy.IDEAL)
    for strategy in _PARTITIONED_STRATEGIES:
        states = {}
        for partitioner in partitioners:
            try:
                compiled, simulator, result, _hook = _run_config(
                    recipe, strategy, backend, None, partitioner=partitioner
                )
            except SimulationError as fault:
                raise OracleViolation(
                    "simulation-fault",
                    "%s[%s]: %s" % (strategy.name, partitioner, fault),
                )
            label = "%s[%s]" % (strategy.name, partitioner)
            observed = _global_state(
                simulator.read_global, compiled.program.module
            )
            for name, expected in reference.items():
                if observed[name] != expected:
                    raise OracleViolation(
                        "partitioner-identity",
                        "%s: global %r is %r, reference says %r"
                        % (label, name, observed[name], expected),
                    )
            _check_duplicate_coherence(simulator, compiled, label)
            if ideal is not None and result.cycles < ideal:
                raise OracleViolation(
                    "partitioner-identity",
                    "%s ran in %d cycles, below the Ideal bound of %d"
                    % (label, result.cycles, ideal),
                )
            if baseline is not None and result.cycles > baseline:
                raise OracleViolation(
                    "partitioner-identity",
                    "%s ran in %d cycles, worse than the single-bank "
                    "baseline's %d" % (label, result.cycles, baseline),
                )
            states[partitioner] = observed
        first = partitioners[0]
        for partitioner in partitioners[1:]:
            if states[partitioner] != states[first]:
                differing = sorted(
                    name
                    for name in states[first]
                    if states[partitioner][name] != states[first][name]
                )
                raise OracleViolation(
                    "partitioner-identity",
                    "%s: globals %s differ between partitioners %s and %s"
                    % (strategy.name, differing, first, partitioner),
                )


def _check(recipe, strategies, backends):
    from repro.evaluation.runner import module_fingerprint

    first = module_fingerprint(build_module(recipe))
    second = module_fingerprint(build_module(recipe))
    if first != second:
        raise OracleViolation(
            "build-determinism",
            "rebuilding the module changed its fingerprint",
        )

    reference = _reference_state(recipe)
    report = OracleReport()
    profile = None
    for strategy in strategies:
        if strategy.needs_profile and profile is None:
            profile = _profile_counts(recipe)
        counts = profile if strategy.needs_profile else None
        observations = {}
        for backend in backends:
            try:
                compiled, simulator, result, hook = _run_config(
                    recipe, strategy, backend, counts
                )
            except SimulationError as fault:
                raise OracleViolation(
                    "simulation-fault",
                    "%s/%s: %s" % (strategy.name, backend, fault),
                )
            label = "%s/%s" % (strategy.name, backend)
            observed = _global_state(simulator.read_global, compiled.program.module)
            for name, expected in reference.items():
                if observed[name] != expected:
                    raise OracleViolation(
                        "strategy-semantics",
                        "%s: global %r is %r, reference says %r"
                        % (label, name, observed[name], expected),
                    )
            _check_duplicate_coherence(simulator, compiled, label)
            observations[backend] = _Observation(simulator, result)
            if hook is not None:
                report.interrupts_delivered += hook.delivered
        _check_backend_identity(observations, strategy)
        baseline_backend = backends[0]
        report.cycles[strategy] = observations[baseline_backend].result.cycles
        report.duplicated[strategy] = [
            symbol.name for symbol in compiled.allocation.duplicated
        ]
    _check_cycle_ordering(report.cycles)
    return report


def _check_duplicate_coherence(simulator, compiled, label):
    from repro.ir.symbols import MemoryBank

    for symbol in compiled.program.module.globals:
        if symbol.bank is not MemoryBank.BOTH:
            continue
        copy_x = simulator.read_global_copy(symbol.name, MemoryBank.X)
        copy_y = simulator.read_global_copy(symbol.name, MemoryBank.Y)
        if copy_x != copy_y:
            raise OracleViolation(
                "duplication-coherence",
                "%s: copies of %r diverged: X=%r Y=%r"
                % (label, symbol.name, copy_x, copy_y),
            )


def _check_backend_identity(observations, strategy):
    backends = list(observations)
    first = observations[backends[0]]
    for backend in backends[1:]:
        other = observations[backend]
        pairs = (
            ("cycles", first.result.cycles, other.result.cycles),
            ("operations", first.result.operations, other.result.operations),
            ("pc_counts", first.result.pc_counts, other.result.pc_counts),
            ("stack_peak_x", first.result.stack_peak_x, other.result.stack_peak_x),
            ("stack_peak_y", first.result.stack_peak_y, other.result.stack_peak_y),
            ("memory", first.memory, other.memory),
            ("registers", first.registers, other.registers),
        )
        for field, expected, actual in pairs:
            if expected != actual:
                raise OracleViolation(
                    "backend-identity",
                    "%s: %s differ between %s and %s: %r vs %r"
                    % (
                        strategy.name,
                        field,
                        backends[0],
                        backend,
                        _truncate(expected),
                        _truncate(actual),
                    ),
                )


def _truncate(value, limit=200):
    text = repr(value)
    return text if len(text) <= limit else text[:limit] + "..."


def _check_cycle_ordering(cycles):
    baseline = cycles.get(Strategy.SINGLE_BANK)
    ideal = cycles.get(Strategy.IDEAL)
    for strategy, measured in cycles.items():
        if ideal is not None and measured < ideal:
            raise OracleViolation(
                "cycle-ordering",
                "%s ran in %d cycles, below the Ideal bound of %d"
                % (strategy.name, measured, ideal),
            )
        if (
            baseline is not None
            and strategy is not Strategy.SINGLE_BANK
            and measured > baseline
        ):
            raise OracleViolation(
                "cycle-ordering",
                "%s ran in %d cycles, worse than the single-bank "
                "baseline's %d" % (strategy.name, measured, baseline),
            )
