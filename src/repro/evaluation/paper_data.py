"""The paper's published numbers, for side-by-side comparison.

Table 3 is reproduced verbatim from the paper.  Figures 7 and 8 are bar
charts without printed values, so only the ranges and per-benchmark facts
stated in the text are encoded.
"""

#: Paper Table 3: application -> {config: (PG, CI, PCR)}.
PAPER_TABLE3 = {
    "adpcm": {
        "FullDup": (1.03, 1.30, 0.79),
        "Dup": (1.03, 0.99, 1.04),
        "CB": (1.03, 0.99, 1.04),
        "Ideal": (1.03, 0.99, 1.04),
    },
    "lpc": {
        "FullDup": (1.33, 1.56, 0.85),
        "Dup": (1.34, 1.12, 1.20),
        "CB": (1.03, 0.99, 1.04),
        "Ideal": (1.36, 0.99, 1.38),
    },
    "spectral": {
        "FullDup": (1.09, 1.28, 0.86),
        "Dup": (1.06, 1.05, 1.01),
        "CB": (1.09, 0.98, 1.11),
        "Ideal": (1.14, 0.98, 1.16),
    },
    "edge_detect": {
        "FullDup": (1.16, 1.98, 0.59),
        "Dup": (1.15, 1.00, 1.15),
        "CB": (1.15, 1.00, 1.15),
        "Ideal": (1.16, 1.00, 1.16),
    },
    "compress": {
        "FullDup": (1.11, 1.93, 0.58),
        "Dup": (1.12, 1.00, 1.12),
        "CB": (1.12, 1.00, 1.12),
        "Ideal": (1.12, 1.00, 1.12),
    },
    "histogram": {
        "FullDup": (1.00, 1.94, 0.52),
        "Dup": (1.00, 1.00, 1.00),
        "CB": (1.00, 1.00, 1.00),
        "Ideal": (1.00, 1.00, 1.00),
    },
    "V32encode": {
        "FullDup": (1.04, 1.35, 0.77),
        "Dup": (1.09, 0.99, 1.10),
        "CB": (1.08, 0.98, 1.09),
        "Ideal": (1.11, 0.98, 1.13),
    },
    "G721MLencode": {
        "FullDup": (1.00, 1.70, 0.59),
        "Dup": (1.00, 1.00, 1.00),
        "CB": (1.00, 1.00, 1.00),
        "Ideal": (1.00, 1.00, 1.00),
    },
    "G721MLdecode": {
        "FullDup": (1.00, 1.70, 0.59),
        "Dup": (1.00, 1.00, 1.00),
        "CB": (1.00, 1.00, 1.00),
        "Ideal": (1.00, 1.00, 1.00),
    },
    "G721WFencode": {
        "FullDup": (1.00, 1.70, 0.59),
        "Dup": (1.00, 1.00, 1.00),
        "CB": (1.00, 1.00, 1.00),
        "Ideal": (1.00, 1.00, 1.00),
    },
    "trellis": {
        "FullDup": (1.05, 1.33, 0.79),
        "Dup": (1.05, 0.98, 1.07),
        "CB": (1.05, 0.98, 1.07),
        "Ideal": (1.05, 0.98, 1.07),
    },
}

#: Paper Table 3 arithmetic-mean row.
PAPER_TABLE3_MEAN = {
    "FullDup": (1.07, 1.62, 0.68),
    "Dup": (1.08, 1.01, 1.06),
    "CB": (1.05, 0.99, 1.06),
    "Ideal": (1.09, 0.99, 1.10),
}

#: Facts the text states about Figure 7 (kernels).
PAPER_FIGURE7_FACTS = {
    "cb_gain_range": (13.0, 49.0),
    "cb_gain_average": 29.0,
    # CB matches Ideal for every kernel except iir_4_64, which lands
    # three percentage points below its 34% Ideal gain.
    "iir_4_64_cb": 31.0,
    "iir_4_64_ideal": 34.0,
}

#: Facts the text states about Figure 8 (applications).
PAPER_FIGURE8_FACTS = {
    "cb_gain_range_when_possible": (3.0, 15.0),
    "ideal_gain_range": (3.0, 36.0),
    "zero_gain_apps": [
        "histogram",
        "G721MLencode",
        "G721MLdecode",
        "G721WFencode",
    ],
    "lpc": {"CB": 3.0, "Dup": 34.0, "Ideal": 36.0},
    "spectral": {"CB": 9.0, "Ideal": 14.0},
}

#: Figure 7/8 x-axis order (paper's k1..k12 and a1..a11 labels).
KERNEL_ORDER = [
    "fft_1024",
    "fft_256",
    "fir_256_64",
    "fir_32_1",
    "iir_4_64",
    "iir_1_1",
    "latnrm_32_64",
    "latnrm_8_1",
    "lmsfir_32_64",
    "lmsfir_8_1",
    "mult_10_10",
    "mult_4_4",
]

APPLICATION_ORDER = [
    "adpcm",
    "lpc",
    "spectral",
    "edge_detect",
    "compress",
    "histogram",
    "V32encode",
    "G721MLencode",
    "G721MLdecode",
    "G721WFencode",
    "trellis",
]
