"""ASCII rendering of the reproduced figures and table.

Each renderer prints the same rows/series the paper reports, with the
paper's own numbers alongside where the paper states them.
"""

from repro.evaluation.paper_data import PAPER_TABLE3, PAPER_TABLE3_MEAN
from repro.evaluation.tables import TABLE3_CONFIGS


def _bar(value, scale=1.0, width=50):
    length = max(0, min(width, int(round(value * scale))))
    return "#" * length


def render_figure7(series):
    lines = [series.title, "=" * len(series.title), ""]
    lines.append("%-14s %8s %8s   gain over single-bank baseline" % ("kernel", "CB", "Ideal"))
    for name in series.order:
        cb = series.gains["CB"][name]
        ideal = series.gains["Ideal"][name]
        lines.append(
            "%-14s %+7.1f%% %+7.1f%%  |%s"
            % (name, cb, ideal, _bar(cb))
        )
    cb_values = series.series("CB")
    lines.append("")
    lines.append(
        "CB gain range: %.1f%% .. %.1f%%, average %.1f%%  (paper: 13%%-49%%, avg 29%%)"
        % (min(cb_values), max(cb_values), sum(cb_values) / len(cb_values))
    )
    return "\n".join(lines)


def render_figure8(series):
    lines = [series.title, "=" * len(series.title), ""]
    header = "%-14s" % "application"
    for label in series.labels:
        header += " %8s" % label
    lines.append(header)
    for name in series.order:
        row = "%-14s" % name
        for label in series.labels:
            row += " %+7.1f%%" % series.gains[label][name]
        lines.append(row)
    cb_positive = [
        series.gains["CB"][n]
        for n in series.order
        if series.gains["Ideal"][n] > 0.5
    ]
    lines.append("")
    if cb_positive:
        lines.append(
            "CB gain where gains are possible: %.1f%%..%.1f%% (paper: 3%%-15%%)"
            % (min(cb_positive), max(cb_positive))
        )
    return "\n".join(lines)


def render_markdown(figure7_series, figure8_series, table):
    """One self-contained markdown report covering all three artifacts.

    Useful for regenerating the core of EXPERIMENTS.md after a change:
    ``python -m repro report > report.md``.
    """
    lines = ["# Reproduced evaluation", ""]
    lines.append("## Figure 7 — kernel performance gains")
    lines.append("")
    lines.append("| kernel | CB | Ideal |")
    lines.append("|---|---|---|")
    for name in figure7_series.order:
        lines.append(
            "| %s | +%.1f%% | +%.1f%% |"
            % (
                name,
                figure7_series.gains["CB"][name],
                figure7_series.gains["Ideal"][name],
            )
        )
    lines.append("")
    lines.append("## Figure 8 — application performance gains")
    lines.append("")
    header = "| application |" + "".join(
        " %s |" % label for label in figure8_series.labels
    )
    lines.append(header)
    lines.append("|---|" + "---|" * len(figure8_series.labels))
    for name in figure8_series.order:
        row = "| %s |" % name
        for label in figure8_series.labels:
            row += " +%.1f%% |" % figure8_series.gains[label][name]
        lines.append(row)
    lines.append("")
    lines.append("## Table 3 — performance/cost trade-offs")
    lines.append("")
    labels = [label for label, _s in TABLE3_CONFIGS]
    lines.append(
        "| application |"
        + "".join(" %s PG/CI/PCR |" % label for label in labels)
    )
    lines.append("|---|" + "---|" * len(labels))
    for name in table.order:
        row = "| %s |" % name
        for label in labels:
            cell = table.rows[name][label]
            row += " %.2f / %.2f / %.2f |" % (cell.pg, cell.ci, cell.pcr)
        lines.append(row)
    mean_row = "| **mean** |"
    for label in labels:
        pg, ci, pcr = table.mean(label)
        mean_row += " %.2f / %.2f / %.2f |" % (pg, ci, pcr)
    lines.append(mean_row)
    return "\n".join(lines)


def render_table3(table):
    title = "Table 3: Performance/Cost Trade-Offs of Exploiting Dual Data-Memory Banks"
    lines = [title, "=" * len(title), ""]
    labels = [label for label, _s in TABLE3_CONFIGS]
    header = "%-14s" % "application"
    for label in labels:
        header += " | %5s %5s %5s" % ("PG", "CI", "PCR")
    lines.append(header + "   (columns: %s)" % ", ".join(labels))
    for name in table.order:
        row = "%-14s" % name
        for label in labels:
            cell = table.rows[name][label]
            row += " | %5.2f %5.2f %5.2f" % (cell.pg, cell.ci, cell.pcr)
        lines.append(row)
        paper = PAPER_TABLE3.get(name)
        if paper:
            ref = "%-14s" % "  (paper)"
            for label in labels:
                pg, ci, pcr = paper[label]
                ref += " | %5.2f %5.2f %5.2f" % (pg, ci, pcr)
            lines.append(ref)
    mean_row = "%-14s" % "Arithmetic Mean"
    for label in labels:
        pg, ci, pcr = table.mean(label)
        mean_row += " | %5.2f %5.2f %5.2f" % (pg, ci, pcr)
    lines.append(mean_row)
    paper_mean = "%-14s" % "  (paper)"
    for label in labels:
        pg, ci, pcr = PAPER_TABLE3_MEAN[label]
        paper_mean += " | %5.2f %5.2f %5.2f" % (pg, ci, pcr)
    lines.append(paper_mean)
    return "\n".join(lines)
