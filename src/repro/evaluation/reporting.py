"""Rendering: the reproduced figures/table and the observability report.

Each figure/table renderer prints the same rows/series the paper
reports, with the paper's own numbers alongside where the paper states
them.  :func:`render_observability` renders the per-workload
observability report (:func:`repro.obs.report.build_report`) — per-pass
compile timings, hot pcs, bank histograms, and the bank-conflict table
— as one markdown document with the machine-readable JSON embedded at
the end.
"""

import json

from repro.evaluation.paper_data import PAPER_TABLE3, PAPER_TABLE3_MEAN
from repro.evaluation.tables import TABLE3_CONFIGS


def _bar(value, scale=1.0, width=50):
    length = max(0, min(width, int(round(value * scale))))
    return "#" * length


def render_figure7(series):
    """Figure 7 as fixed-width text: per-kernel CB and Ideal gains."""
    lines = [series.title, "=" * len(series.title), ""]
    lines.append("%-14s %8s %8s   gain over single-bank baseline" % ("kernel", "CB", "Ideal"))
    for name in series.order:
        cb = series.gains["CB"][name]
        ideal = series.gains["Ideal"][name]
        lines.append(
            "%-14s %+7.1f%% %+7.1f%%  |%s"
            % (name, cb, ideal, _bar(cb))
        )
    cb_values = series.series("CB")
    lines.append("")
    lines.append(
        "CB gain range: %.1f%% .. %.1f%%, average %.1f%%  (paper: 13%%-49%%, avg 29%%)"
        % (min(cb_values), max(cb_values), sum(cb_values) / len(cb_values))
    )
    return "\n".join(lines)


def render_figure8(series):
    """Figure 8 as fixed-width text: per-application gains per config."""
    lines = [series.title, "=" * len(series.title), ""]
    header = "%-14s" % "application"
    for label in series.labels:
        header += " %8s" % label
    lines.append(header)
    for name in series.order:
        row = "%-14s" % name
        for label in series.labels:
            row += " %+7.1f%%" % series.gains[label][name]
        lines.append(row)
    cb_positive = [
        series.gains["CB"][n]
        for n in series.order
        if series.gains["Ideal"][n] > 0.5
    ]
    lines.append("")
    if cb_positive:
        lines.append(
            "CB gain where gains are possible: %.1f%%..%.1f%% (paper: 3%%-15%%)"
            % (min(cb_positive), max(cb_positive))
        )
    return "\n".join(lines)


def render_markdown(figure7_series, figure8_series, table):
    """One self-contained markdown report covering all three artifacts.

    Useful for regenerating the core of EXPERIMENTS.md after a change:
    ``python -m repro report > report.md``.
    """
    lines = ["# Reproduced evaluation", ""]
    lines.append("## Figure 7 — kernel performance gains")
    lines.append("")
    lines.append("| kernel | CB | Ideal |")
    lines.append("|---|---|---|")
    for name in figure7_series.order:
        lines.append(
            "| %s | +%.1f%% | +%.1f%% |"
            % (
                name,
                figure7_series.gains["CB"][name],
                figure7_series.gains["Ideal"][name],
            )
        )
    lines.append("")
    lines.append("## Figure 8 — application performance gains")
    lines.append("")
    header = "| application |" + "".join(
        " %s |" % label for label in figure8_series.labels
    )
    lines.append(header)
    lines.append("|---|" + "---|" * len(figure8_series.labels))
    for name in figure8_series.order:
        row = "| %s |" % name
        for label in figure8_series.labels:
            row += " +%.1f%% |" % figure8_series.gains[label][name]
        lines.append(row)
    lines.append("")
    lines.append("## Table 3 — performance/cost trade-offs")
    lines.append("")
    labels = [label for label, _s in TABLE3_CONFIGS]
    lines.append(
        "| application |"
        + "".join(" %s PG/CI/PCR |" % label for label in labels)
    )
    lines.append("|---|" + "---|" * len(labels))
    for name in table.order:
        row = "| %s |" % name
        for label in labels:
            cell = table.rows[name][label]
            row += " %.2f / %.2f / %.2f |" % (cell.pg, cell.ci, cell.pcr)
        lines.append(row)
    mean_row = "| **mean** |"
    for label in labels:
        pg, ci, pcr = table.mean(label)
        mean_row += " %.2f / %.2f / %.2f |" % (pg, ci, pcr)
    lines.append(mean_row)
    return "\n".join(lines)


def _pass_details(row):
    """One cell summarizing a pass's metrics (everything but name/time)."""
    parts = []
    for key, value in row.items():
        if key in ("pass", "seconds"):
            continue
        if isinstance(value, float):
            parts.append("%s=%.3f" % (key, value))
        else:
            parts.append("%s=%s" % (key, value))
    return ", ".join(parts)


def _render_passes(lines, config):
    lines.append("| pass | time (µs) | details |")
    lines.append("|---|---:|---|")
    for row in config["compile_passes"]:
        lines.append(
            "| %s | %.0f | %s |"
            % (row["pass"], 1e6 * (row["seconds"] or 0.0), _pass_details(row))
        )
    if config["compile_seconds"] is not None:
        lines.append(
            "| **total** | **%.0f** | |" % (1e6 * config["compile_seconds"])
        )


def _render_conflicts(lines, config, limit=15):
    conflicts = config["profile"]["conflicts"]
    if not conflicts:
        lines.append("No bank conflicts: no two memory operations to the")
        lines.append("same bank were serialized in adjacent instructions.")
        return
    lines.append("| variable pair | bank | cycles | static sites | note |")
    lines.append("|---|---|---:|---:|---|")
    for entry in conflicts[:limit]:
        note = "same variable (duplication candidate)" if entry["same_variable"] else ""
        lines.append(
            "| %s, %s | %s | %d | %d | %s |"
            % (
                entry["var_a"],
                entry["var_b"],
                entry["bank"],
                entry["cycles"],
                entry["events"],
                note,
            )
        )
    if len(conflicts) > limit:
        lines.append("")
        lines.append(
            "(%d further pairs omitted; see the JSON document.)"
            % (len(conflicts) - limit)
        )


def render_observability(report):
    """Render a :func:`repro.obs.report.build_report` dict as markdown.

    The document carries the human-readable tables (configuration
    summary, per-pass compile-time breakdown, top-N hot pcs, per-bank
    access histogram, bank-conflict table) followed by the complete
    JSON report in a fenced block, so one emission is both readable and
    machine-parseable.
    """
    base = report["baseline"]
    target = report["strategy"]
    deltas = report["deltas"]
    lines = [
        "# Observability report — %s (%s)" % (report["workload"], report["category"]),
        "",
        "Strategy **%s** vs baseline **%s**, backend `%s`."
        % (target["label"], base["label"], report["backend"]),
        "",
        "| | %s | %s | delta |" % (base["label"], target["label"]),
        "|---|---:|---:|---:|",
        "| cycles | %d | %d | %+.1f%% gain |"
        % (base["cycles"], target["cycles"], deltas["gain_percent"]),
        "| operations | %d | %d | |"
        % (base["operations"], target["operations"]),
        "| ops/cycle | %.2f | %.2f | |"
        % (base["parallelism"], target["parallelism"]),
        "| code size (instructions) | %d | %d | %+d |"
        % (base["code_size"], target["code_size"], deltas["code_size_delta"]),
        "| conflict cycles | %d | %d | %+d removed |"
        % (
            deltas["conflict_cycles_baseline"],
            deltas["conflict_cycles_strategy"],
            deltas["conflict_cycles_removed"],
        ),
    ]
    if target["duplicated"]:
        lines.append(
            "| duplicated symbols | | %s | |" % ", ".join(target["duplicated"])
        )
    for config in (base, target):
        lines += ["", "## Compile passes — %s" % config["label"], ""]
        _render_passes(lines, config)
    nodes = target.get("nodes") or base.get("nodes")
    if nodes:
        lines += ["", "## Frontend nodes", ""]
        lines.append(
            "| nodes created | cons hits | hit rate | cons entries "
            "| interned immediates | interned labels |"
        )
        lines.append("|---:|---:|---:|---:|---:|---:|")
        lines.append(
            "| %d | %d | %.1f%% | %d | %d | %d |"
            % (
                nodes["nodes_created"],
                nodes["cons_hits"],
                100.0 * nodes["cons_hit_rate"],
                nodes["cons_entries"],
                nodes["immediate_entries"],
                nodes["label_entries"],
            )
        )
        per_class = ", ".join(
            "%s %d" % (name, count)
            for name, count in sorted(nodes["created"].items())
        )
        if per_class:
            lines.append("")
            lines.append("Created per class: %s." % per_class)
    for config in (base, target):
        lines += ["", "## Hot pcs — %s (top %d)" % (config["label"], report["top"]), ""]
        lines.append("| pc | cycles | share | block | instruction |")
        lines.append("|---:|---:|---:|---|---|")
        for row in config["profile"]["hot_pcs"]:
            lines.append(
                "| %d | %d | %.1f%% | %s | `%s` |"
                % (
                    row["pc"],
                    row["cycles"],
                    100.0 * row["share"],
                    row["block"],
                    row["text"],
                )
            )
    lines += ["", "## Bank accesses", ""]
    lines.append("| configuration | X loads | X stores | Y loads | Y stores |")
    lines.append("|---|---:|---:|---:|---:|")
    for config in (base, target):
        banks = config["profile"]["bank_accesses"]
        lines.append(
            "| %s | %d | %d | %d | %d |"
            % (
                config["label"],
                banks["X"]["loads"],
                banks["X"]["stores"],
                banks["Y"]["loads"],
                banks["Y"]["stores"],
            )
        )
    for config in (base, target):
        lines += ["", "## Bank-conflict table — %s" % config["label"], ""]
        _render_conflicts(lines, config)
    lines += [
        "",
        "## Machine-readable report",
        "",
        "```json",
        json.dumps(report, indent=2, sort_keys=True),
        "```",
    ]
    return "\n".join(lines)


def render_partition_gap(report):
    """Render a :func:`repro.evaluation.partition_gap.partition_gap`
    dict as fixed-width text: one row per workload (exact cost starred
    when proved optimal, each heuristic's cost and gap ratio beside it)
    plus the per-partitioner aggregate block."""
    title = (
        "Partitioner gap-to-optimal (%s strategy, backend %s)"
        % (report["strategy"], report["backend"])
    )
    lines = [title, "=" * len(title), ""]
    heuristics = [p for p in report["partitioners"] if p != "exact"]
    header = "%-16s %5s %9s" % ("workload", "nodes", "exact")
    for partitioner in heuristics:
        header += " %16s" % ("%s cost/gap" % partitioner)
    lines.append(header)
    for name in report["order"]:
        row = report["workloads"][name]
        exact = row["partitioners"]["exact"]
        line = "%-16s %5d %8g%s" % (
            name,
            row["graph_nodes"],
            exact["final_cost"],
            "*" if exact["proved_optimal"] else " ",
        )
        for partitioner in heuristics:
            entry = row["partitioners"][partitioner]
            line += "     %6g/%5.3f" % (
                entry["final_cost"], row["gap"][partitioner]
            )
        lines.append(line)
    lines.append("")
    lines.append("* = proved minimum-cost by branch-and-bound")
    lines.append("")
    aggregate = report["aggregate"]
    total = aggregate["workloads"]
    lines.append(
        "%-12s %9s %8s %12s %9s"
        % ("partitioner", "mean gap", "max gap", "optimal", "mean PCR")
    )
    for partitioner in report["partitioners"]:
        stats = aggregate[partitioner]
        lines.append(
            "%-12s %9.4f %8.4f %9d/%-2d %9.2f"
            % (
                partitioner,
                stats["mean_gap"],
                stats["max_gap"],
                stats["optimal_count"],
                total,
                stats["mean_pcr"],
            )
        )
    return "\n".join(lines)


def render_table3(table):
    """Table 3 as fixed-width text: PG / CI / PCR per application."""
    title = "Table 3: Performance/Cost Trade-Offs of Exploiting Dual Data-Memory Banks"
    lines = [title, "=" * len(title), ""]
    labels = [label for label, _s in TABLE3_CONFIGS]
    header = "%-14s" % "application"
    for label in labels:
        header += " | %5s %5s %5s" % ("PG", "CI", "PCR")
    lines.append(header + "   (columns: %s)" % ", ".join(labels))
    for name in table.order:
        row = "%-14s" % name
        for label in labels:
            cell = table.rows[name][label]
            row += " | %5.2f %5.2f %5.2f" % (cell.pg, cell.ci, cell.pcr)
        lines.append(row)
        paper = PAPER_TABLE3.get(name)
        if paper:
            ref = "%-14s" % "  (paper)"
            for label in labels:
                pg, ci, pcr = paper[label]
                ref += " | %5.2f %5.2f %5.2f" % (pg, ci, pcr)
            lines.append(ref)
    mean_row = "%-14s" % "Arithmetic Mean"
    for label in labels:
        pg, ci, pcr = table.mean(label)
        mean_row += " | %5.2f %5.2f %5.2f" % (pg, ci, pcr)
    lines.append(mean_row)
    paper_mean = "%-14s" % "  (paper)"
    for label in labels:
        pg, ci, pcr = PAPER_TABLE3_MEAN[label]
        paper_mean += " | %5.2f %5.2f %5.2f" % (pg, ci, pcr)
    lines.append(paper_mean)
    return "\n".join(lines)
