"""Gap-to-optimal study: every partitioner over the workload registry.

The paper (Section 3.1) picks the greedy node-moving heuristic because
the authors found it "near-ideal" — but never quantifies the gap.  This
module does: every registry workload is compiled under ``CB`` once per
registered partitioner (:data:`~repro.partition.registry.PARTITIONERS`),
and each run records

* the partitioner's **final interference cost** (the objective the
  partition pass minimizes) and whether optimality was proved,
* the **gap ratio** ``final_cost / exact final_cost`` — 1.0 means the
  heuristic found the branch-and-bound optimum,
* the **realized** numbers that actually matter downstream: cycles,
  PG/CI/PCR against the single-bank baseline (paper Table 3 style).

The registry graphs all fit inside the exact solver's node limit, so
the ``exact`` column is a proved optimum and every gap is exact, not
estimated.  ``benchmarks/bench_partition.py`` freezes the result as
``BENCH_partition.json`` and gates regressions.
"""

from repro.evaluation.runner import _ratio, _run_once
from repro.partition.registry import PARTITIONERS
from repro.partition.strategies import Strategy

__all__ = ["measure_gap", "partition_gap"]

#: the strategy whose partition the study measures: plain compaction-
#: based partitioning, where the cut cost is the whole story (no
#: duplication rewriting on top)
GAP_STRATEGY = Strategy.CB


def measure_gap(name, backend="interp"):
    """Worker entry point: one workload under every partitioner.

    Returns a JSON-able row: per-partitioner final cost / proved flag /
    cycles / PG / CI / PCR, plus the per-partitioner gap ratio to the
    exact solver's cost.  Every run is verified against the workload's
    reference model — a partitioner that broke semantics would fault
    here, not skew the numbers.
    """
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    baseline, _compiled, _result = _run_once(
        workload, Strategy.SINGLE_BANK, backend=backend
    )
    per_partitioner = {}
    graph_nodes = None
    for partitioner in sorted(PARTITIONERS):
        measurement, compiled, _result = _run_once(
            workload, GAP_STRATEGY, backend=backend, partitioner=partitioner
        )
        partition = compiled.allocation.partition
        graph_nodes = len(compiled.allocation.graph)
        pg = _ratio(baseline.cycles, measurement.cycles)
        ci = _ratio(measurement.cost.total, baseline.cost.total)
        per_partitioner[partitioner] = {
            "initial_cost": partition.initial_cost,
            "final_cost": partition.final_cost,
            "proved_optimal": partition.proved_optimal,
            "cycles": measurement.cycles,
            "pg": pg,
            "ci": ci,
            "pcr": pg / ci if ci else float("inf"),
        }
    exact_cost = per_partitioner["exact"]["final_cost"]
    return {
        "workload": name,
        "category": workload.category,
        "graph_nodes": graph_nodes,
        "baseline_cycles": baseline.cycles,
        "partitioners": per_partitioner,
        "gap": {
            partitioner: _ratio(entry["final_cost"], exact_cost)
            for partitioner, entry in per_partitioner.items()
        },
    }


def _aggregate(rows):
    """Fold per-workload rows into the headline per-partitioner stats."""
    aggregate = {}
    total = len(rows)
    for partitioner in sorted(PARTITIONERS):
        gaps = [row["gap"][partitioner] for row in rows]
        finite = [gap for gap in gaps if gap != float("inf")]
        pcrs = [
            row["partitioners"][partitioner]["pcr"]
            for row in rows
            if row["partitioners"][partitioner]["pcr"] != float("inf")
        ]
        aggregate[partitioner] = {
            "mean_gap": sum(finite) / len(finite) if finite else 1.0,
            "max_gap": max(finite) if finite else 1.0,
            # workloads where this partitioner matched the proved optimum
            "optimal_count": sum(
                1
                for row in rows
                if row["partitioners"]["exact"]["proved_optimal"]
                and row["gap"][partitioner] <= 1.0
            ),
            "proved_count": sum(
                1
                for row in rows
                if row["partitioners"][partitioner]["proved_optimal"]
            ),
            "mean_pcr": sum(pcrs) / len(pcrs) if pcrs else 0.0,
        }
    aggregate["workloads"] = total
    return aggregate


def partition_gap(jobs=None, backend="interp", workloads=None):
    """The full gap-to-optimal report over the workload registry.

    ``workloads`` (names) restricts the sweep; ``jobs`` fans workloads
    over worker processes exactly like the figure/table regenerations
    (None/1 = serial, 0 resolved by the caller to all cores).  Returns a
    JSON-able dict: ordered per-workload rows (:func:`measure_gap`)
    under ``"workloads"`` plus per-partitioner aggregates — mean/max
    greedy-vs-exact gap, how often each heuristic hit the proved
    optimum, and the mean realized PCR.
    """
    from repro.evaluation.parallel import parallel_map
    from repro.workloads.registry import all_workloads

    table = all_workloads()
    names = list(workloads) if workloads is not None else sorted(table)
    unknown = [name for name in names if name not in table]
    if unknown:
        raise ValueError(
            "unknown workload(s) %s (choose from: %s)"
            % (", ".join(unknown), ", ".join(sorted(table)))
        )
    rows = parallel_map(measure_gap, [(name, backend) for name in names],
                        jobs=jobs)
    return {
        "backend": backend,
        "strategy": GAP_STRATEGY.name,
        "order": names,
        "partitioners": sorted(PARTITIONERS),
        "workloads": {row["workload"]: row for row in rows},
        "aggregate": _aggregate(rows),
    }
