"""Compile-simulate-verify one workload under the paper's configurations.

Performance is measured exactly as in the paper: cycle counts from the
instruction-set simulator, reported as gains over the single-bank
baseline (allocation pass disabled).  The ``Pr`` configuration profiles
the baseline binary first and feeds block execution counts to the
allocation pass as edge weights.
"""

from repro.compiler import compile_module
from repro.cost.model import CostModel
from repro.partition.strategies import Strategy
from repro.sim.fastsim import make_simulator
from repro.sim.tracing import collect_block_counts


class Measurement:
    """One (workload, configuration) data point."""

    def __init__(self, strategy, cycles, cost, code_size, duplicated):
        self.strategy = strategy
        self.cycles = cycles
        #: the :class:`~repro.cost.model.CostReport`
        self.cost = cost
        self.code_size = code_size
        #: names of symbols duplicated into both banks
        self.duplicated = duplicated

    def __repr__(self):
        return "<Measurement %s cycles=%d cost=%d>" % (
            self.strategy.name,
            self.cycles,
            self.cost.total,
        )


class WorkloadEvaluation:
    """All configurations of one workload, relative to its baseline."""

    def __init__(self, name, category, measurements):
        self.name = name
        self.category = category
        #: Strategy -> Measurement (always includes SINGLE_BANK)
        self.measurements = measurements

    @property
    def baseline(self):
        """The single-bank measurement every gain is normalized to."""
        return self.measurements[Strategy.SINGLE_BANK]

    def cycles(self, strategy):
        """Cycle count measured under *strategy*."""
        return self.measurements[strategy].cycles

    def gain_percent(self, strategy):
        """Percent cycle-count improvement over the single-bank baseline,
        the y-axis of the paper's Figures 7 and 8."""
        return 100.0 * (self.performance_gain(strategy) - 1.0)

    def performance_gain(self, strategy):
        """PG ratio as used in paper Table 3 (1.00 = unchanged).

        Degenerate zero-cycle measurements (an empty workload) are
        defined rather than faulting: matching zeros count as unchanged,
        a zero-cycle configuration against a nonzero baseline is an
        unbounded gain.
        """
        return _ratio(self.baseline.cycles, self.cycles(strategy))

    def cost_increase(self, strategy):
        """CI ratio as used in paper Table 3 (1.00 = unchanged); defined
        even for zero-cost measurements (see :meth:`performance_gain`)."""
        return _ratio(self.measurements[strategy].cost.total, self.baseline.cost.total)

    def pcr(self, strategy):
        """Performance/cost ratio PG/CI (paper Table 3); inf at CI=0."""
        ci = self.cost_increase(strategy)
        if ci == 0.0:
            return float("inf")
        return self.performance_gain(strategy) / ci


def _ratio(numerator, denominator):
    """``numerator / denominator`` with the degenerate cases pinned:
    0/0 is 1.0 (nothing changed), n/0 is +inf (unbounded improvement)."""
    if denominator == 0:
        return 1.0 if numerator == 0 else float("inf")
    return numerator / denominator


def module_fingerprint(module):
    """Content hash of a freshly built module: the printed IR (blocks,
    operations, symbols) plus global sizes and initializers — everything
    that determines the compiled program for a given strategy."""
    import hashlib

    from repro.ir.printer import format_module

    digest = hashlib.sha256(format_module(module).encode())
    for symbol in module.globals:
        digest.update(
            repr(
                (symbol.name, symbol.size, symbol.data_type, symbol.initializer)
            ).encode()
        )
    return digest.hexdigest()


def _compile_cached(workload, strategy, profile_counts, cache,
                    partitioner="greedy"):
    """Compile *workload*, consulting the content-keyed *cache*.

    The key is (module content hash, strategy, frozen profile counts,
    partitioner), so any two identical builds share one compile.
    Compiled programs are immutable under simulation (each simulator run
    owns fresh memory), so cache hits skip the whole compile pipeline.
    """
    if cache is None:
        return compile_module(
            workload.build(), strategy=strategy,
            profile_counts=profile_counts, partitioner=partitioner,
        )
    module = workload.build()
    profile_key = (
        None
        if profile_counts is None
        else tuple(sorted(profile_counts.items()))
    )
    key = (module_fingerprint(module), strategy, profile_key, partitioner)
    compiled = cache.get(key)
    if compiled is None:
        compiled = compile_module(
            module, strategy=strategy, profile_counts=profile_counts,
            partitioner=partitioner,
        )
        cache[key] = compiled
    return compiled


def _run_once(workload, strategy, profile_counts=None, verify=True,
              backend="interp", cache=None, partitioner="greedy"):
    compiled = _compile_cached(
        workload, strategy, profile_counts, cache, partitioner=partitioner
    )
    simulator = make_simulator(compiled.program, backend=backend)
    result = simulator.run()
    if verify:
        workload.verify(simulator)
    cost = CostModel().measure(compiled, result)
    duplicated = [s.name for s in compiled.allocation.duplicated]
    return (
        Measurement(strategy, result.cycles, cost, compiled.code_size, duplicated),
        compiled,
        result,
    )


def evaluate_workload(workload, strategies, verify=True, backend="interp",
                      cache=None, partitioner="greedy"):
    """Measure *workload* under *strategies* (baseline always included).

    ``backend`` selects the simulator backend (``interp``, ``fast``, or
    ``jit`` — see :mod:`repro.sim.fastsim`); ``partitioner`` the
    interference-graph partitioner the CB-family strategies use
    (:data:`~repro.partition.registry.PARTITIONERS`); ``cache`` is an
    optional dict used as a content-keyed compiled-program cache shared
    across evaluations.
    """
    measurements = {}
    baseline, base_compiled, base_result = _run_once(
        workload, Strategy.SINGLE_BANK, verify=verify, backend=backend,
        cache=cache,
    )
    measurements[Strategy.SINGLE_BANK] = baseline
    profile = None
    for strategy in strategies:
        if strategy is Strategy.SINGLE_BANK:
            continue
        counts = None
        if strategy.needs_profile:
            if profile is None:
                profile = collect_block_counts(base_compiled.program, base_result)
            counts = profile
        measurement, _compiled, _result = _run_once(
            workload, strategy, profile_counts=counts, verify=verify,
            backend=backend, cache=cache, partitioner=partitioner,
        )
        measurements[strategy] = measurement
    return WorkloadEvaluation(workload.name, workload.category, measurements)
