"""Compile-simulate-verify one workload under the paper's configurations.

Performance is measured exactly as in the paper: cycle counts from the
instruction-set simulator, reported as gains over the single-bank
baseline (allocation pass disabled).  The ``Pr`` configuration profiles
the baseline binary first and feeds block execution counts to the
allocation pass as edge weights.
"""

from repro.compiler import compile_module
from repro.cost.model import CostModel
from repro.partition.strategies import Strategy
from repro.sim.simulator import Simulator
from repro.sim.tracing import collect_block_counts


class Measurement:
    """One (workload, configuration) data point."""

    def __init__(self, strategy, cycles, cost, code_size, duplicated):
        self.strategy = strategy
        self.cycles = cycles
        #: the :class:`~repro.cost.model.CostReport`
        self.cost = cost
        self.code_size = code_size
        #: names of symbols duplicated into both banks
        self.duplicated = duplicated

    def __repr__(self):
        return "<Measurement %s cycles=%d cost=%d>" % (
            self.strategy.name,
            self.cycles,
            self.cost.total,
        )


class WorkloadEvaluation:
    """All configurations of one workload, relative to its baseline."""

    def __init__(self, name, category, measurements):
        self.name = name
        self.category = category
        #: Strategy -> Measurement (always includes SINGLE_BANK)
        self.measurements = measurements

    @property
    def baseline(self):
        return self.measurements[Strategy.SINGLE_BANK]

    def cycles(self, strategy):
        return self.measurements[strategy].cycles

    def gain_percent(self, strategy):
        """Percent cycle-count improvement over the single-bank baseline,
        the y-axis of the paper's Figures 7 and 8."""
        return 100.0 * (self.baseline.cycles / self.cycles(strategy) - 1.0)

    def performance_gain(self, strategy):
        """PG ratio as used in paper Table 3 (1.00 = unchanged)."""
        return self.baseline.cycles / self.cycles(strategy)

    def cost_increase(self, strategy):
        """CI ratio as used in paper Table 3 (1.00 = unchanged)."""
        return (
            self.measurements[strategy].cost.total / self.baseline.cost.total
        )

    def pcr(self, strategy):
        return self.performance_gain(strategy) / self.cost_increase(strategy)


def _run_once(workload, strategy, profile_counts=None, verify=True):
    compiled = compile_module(
        workload.build(), strategy=strategy, profile_counts=profile_counts
    )
    simulator = Simulator(compiled.program)
    result = simulator.run()
    if verify:
        workload.verify(simulator)
    cost = CostModel().measure(compiled, result)
    duplicated = [s.name for s in compiled.allocation.duplicated]
    return (
        Measurement(strategy, result.cycles, cost, compiled.code_size, duplicated),
        compiled,
        result,
    )


def evaluate_workload(workload, strategies, verify=True):
    """Measure *workload* under *strategies* (baseline always included)."""
    measurements = {}
    baseline, base_compiled, base_result = _run_once(
        workload, Strategy.SINGLE_BANK, verify=verify
    )
    measurements[Strategy.SINGLE_BANK] = baseline
    profile = None
    for strategy in strategies:
        if strategy is Strategy.SINGLE_BANK:
            continue
        counts = None
        if strategy.needs_profile:
            if profile is None:
                profile = collect_block_counts(base_compiled.program, base_result)
            counts = profile
        measurement, _compiled, _result = _run_once(
            workload, strategy, profile_counts=counts, verify=verify
        )
        measurements[strategy] = measurement
    return WorkloadEvaluation(workload.name, workload.category, measurements)
