"""Parameter sweeps: how the paper's effects scale with problem size.

The headline results are single design points; these sweeps trace the
underlying curves:

* :func:`kernel_size_sweep` — CB gain as a kernel's size grows (the
  per-iteration win is size-independent; overheads amortize);
* :func:`duplication_crossover` — the paper's Section 4.2 decision
  ("the gain in performance must be weighed against the increase in
  memory cost") as a *curve*: for an autocorrelation workload, the
  duplicated array's share of total memory grows with the frame, so
  partial duplication's PCR falls from clearly-worth-it past the
  crossover where partitioning alone is the better deal.
"""

from repro.compiler import compile_module
from repro.cost.model import CostModel
from repro.frontend import ProgramBuilder
from repro.partition.strategies import Strategy
from repro.sim.fastsim import make_simulator


class SweepPoint:
    """One (parameter, strategy) measurement."""

    def __init__(self, parameter, strategy, cycles, cost):
        self.parameter = parameter
        self.strategy = strategy
        self.cycles = cycles
        self.cost = cost

    def __repr__(self):
        return "<SweepPoint %s %s cycles=%d>" % (
            self.parameter,
            self.strategy.name,
            self.cycles,
        )


def _measure(module, strategy, observe=None, backend="interp",
             partitioner="greedy"):
    compiled = compile_module(
        module, strategy=strategy, observe=observe, partitioner=partitioner
    )
    simulator = make_simulator(compiled.program, backend=backend)
    result = simulator.run()
    return result.cycles, CostModel().measure(compiled, result).total


def sweep(factory, parameters, strategies, observe=None, journal=None,
          backend="interp", partitioner="greedy"):
    """Measure ``factory(parameter)`` under each strategy.

    ``factory`` must return a fresh module per call. Returns
    ``{parameter: {strategy: SweepPoint}}`` with SINGLE_BANK always
    included as the baseline.

    ``observe`` is an optional :class:`~repro.obs.core.Recorder`: each
    measurement gets a ``point`` span (with parameter/strategy/cycles
    metrics) wrapping the instrumented compile — the structured
    replacement for sprinkling progress prints through long sweeps.

    ``journal`` is an optional checkpoint journal (a path or a
    :class:`~repro.evaluation.parallel.Journal`): each completed
    (parameter, strategy) point is recorded, and a rerun skips the
    points already journaled — sweeps are deterministic, so resumed
    curves equal uninterrupted ones.

    ``backend`` selects the simulator backend for every point (any
    :data:`~repro.sim.fastsim.BACKENDS` name, including ``batch``);
    results are bit-identical across backends, so it is purely a
    throughput knob.  Journals written under one backend resume under
    any other (the checkpoint key is backend-independent by design).

    ``partitioner`` selects the interference-graph partitioner
    (:data:`~repro.partition.registry.PARTITIONERS`).  Unlike the
    backend it *does* change measurements, so non-default choices are
    part of the checkpoint key; greedy keeps the historical key shape,
    so existing journals resume unchanged.
    """
    if observe is None:
        from repro.obs.core import NULL_RECORDER as observe
    if journal is not None and not hasattr(journal, "record"):
        from repro.evaluation.parallel import Journal

        journal = Journal(journal)
    rows = {}
    for parameter in parameters:
        row = {}
        for strategy in [Strategy.SINGLE_BANK] + [
            s for s in strategies if s is not Strategy.SINGLE_BANK
        ]:
            key = None
            if journal is not None:
                from repro.evaluation.parallel import Journal

                point = ("sweep", repr(parameter), strategy.name)
                if partitioner != "greedy":
                    point += (partitioner,)
                key = Journal.key_for(point)

                if key in journal.completed:
                    cycles, cost = journal.completed[key]
                    observe.counter("sweep.resumed")
                    row[strategy] = SweepPoint(parameter, strategy, cycles, cost)
                    continue
            with observe.span("point") as span:
                cycles, cost = _measure(
                    factory(parameter), strategy, observe=observe,
                    backend=backend, partitioner=partitioner,
                )
                span.set(
                    parameter=parameter,
                    strategy=strategy.name,
                    partitioner=partitioner,
                    cycles=cycles,
                    cost=cost,
                )
            if journal is not None:
                journal.record(key, [cycles, cost])
            row[strategy] = SweepPoint(parameter, strategy, cycles, cost)
        rows[parameter] = row
    return rows


# ----------------------------------------------------------------------
# Predefined studies
# ----------------------------------------------------------------------
def kernel_size_sweep(taps_list=(8, 16, 32, 64, 128), backend="interp",
                      partitioner="greedy"):
    """CB gain for an FIR filter as the tap count grows."""
    from repro.workloads.kernels.fir import Fir

    def factory(taps):
        return Fir(taps, 4).build()

    rows = sweep(
        factory, taps_list, [Strategy.CB], backend=backend,
        partitioner=partitioner,
    )
    series = []
    for taps in taps_list:
        base = rows[taps][Strategy.SINGLE_BANK].cycles
        cb = rows[taps][Strategy.CB].cycles
        series.append((taps, 100.0 * (base / cb - 1.0)))
    return series


def _autocorr_module(frame, lags=8, table_words=384):
    """A speech-codec-shaped program: a fixed coefficient/codebook table
    (whose size does not scale with the frame) plus the paper-Figure-6
    autocorrelation over a `frame`-sample signal.  Only `signal` gets
    duplicated, so its share of total memory — and with it duplication's
    cost increase — grows with the frame size."""
    pb = ProgramBuilder("autocorr_%d" % frame)
    signal = pb.global_array(
        "signal", frame + lags, float,
        init=[float((7 * i) % 13) / 13.0 for i in range(frame + lags)],
    )
    codebook = pb.global_array(
        "codebook", table_words, float,
        init=[float(i % 9) for i in range(table_words)],
    )
    r = pb.global_array("R", lags, float)
    matches = pb.global_array("matches", lags, float)
    with pb.function("main") as f:
        with f.loop(lags, name="m") as m:
            acc = f.float_var("acc")
            f.assign(acc, 0.0)
            with f.loop(frame, name="n") as n:
                f.assign(acc, acc + signal[n] * signal[n + m])
            f.assign(r[m], acc)
        # Codebook scoring against the correlation vector (fixed work).
        with f.loop(lags, name="k") as k:
            score = f.float_var("score")
            f.assign(score, 0.0)
            with f.loop(lags, name="j") as j:
                f.assign(score, score + codebook[k * lags + j] * r[j])
            f.assign(matches[k], score)
    return pb.build()


def duplication_crossover(frame_sizes=(16, 32, 64, 128, 256, 512)):
    """PG / CI / PCR of CB vs partial duplication across frame sizes.

    Returns rows ``(frame, pcr_cb, pcr_dup, pg_dup, ci_dup)`` plus the
    crossover frame — the first size where duplication's PCR falls below
    plain partitioning's.
    """
    rows = []
    crossover = None
    for frame in frame_sizes:
        base_cycles, base_cost = _measure(
            _autocorr_module(frame), Strategy.SINGLE_BANK
        )
        cb_cycles, cb_cost = _measure(_autocorr_module(frame), Strategy.CB)
        dup_cycles, dup_cost = _measure(
            _autocorr_module(frame), Strategy.CB_DUP
        )
        pcr_cb = (base_cycles / cb_cycles) / (cb_cost / base_cost)
        pg_dup = base_cycles / dup_cycles
        ci_dup = dup_cost / base_cost
        pcr_dup = pg_dup / ci_dup
        rows.append((frame, pcr_cb, pcr_dup, pg_dup, ci_dup))
        if crossover is None and pcr_dup < pcr_cb:
            crossover = frame
    return rows, crossover
