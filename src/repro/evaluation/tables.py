"""Regenerate paper Table 3: performance/cost trade-offs of duplication."""

from repro.cost.model import TradeoffRow
from repro.evaluation.paper_data import APPLICATION_ORDER
from repro.evaluation.parallel import evaluate_workloads
from repro.partition.strategies import Strategy
from repro.workloads.registry import APPLICATIONS

#: Table 3 column order: paper labels -> strategies.
TABLE3_CONFIGS = (
    ("FullDup", Strategy.FULL_DUP),
    ("Dup", Strategy.CB_DUP),
    ("CB", Strategy.CB),
    ("Ideal", Strategy.IDEAL),
)


class Table3:
    """The reproduced Table 3: rows per application plus the mean row."""

    def __init__(self, rows, evaluations):
        #: application -> {label -> TradeoffRow}
        self.rows = rows
        self.evaluations = evaluations

    @property
    def order(self):
        """Application names in the paper's row order."""
        return [name for name in APPLICATION_ORDER if name in self.rows]

    def mean(self, label):
        """Arithmetic mean (PG, CI, PCR) across applications, as in the
        paper's final row (the paper averages each column independently)."""
        cells = [self.rows[name][label] for name in self.order]
        n = float(len(cells))
        pg = sum(c.pg for c in cells) / n
        ci = sum(c.ci for c in cells) / n
        pcr = sum(c.pcr for c in cells) / n
        return pg, ci, pcr


def table3(verify=True, subset=None, jobs=None, backend="interp",
           partitioner="greedy", cache_dir=None):
    """Measure every application under the four Table 3 configurations.

    ``jobs`` fans the (application, configuration) pipelines out across
    worker processes; ``backend`` selects the simulator backend;
    ``partitioner`` the interference-graph partitioner for the
    CB-family configurations; ``cache_dir`` reads every compile
    through the persistent artifact store at that path.
    """
    strategies = [strategy for _label, strategy in TABLE3_CONFIGS]
    rows = {}
    names = (
        APPLICATION_ORDER
        if subset is None
        else [n for n in APPLICATION_ORDER if n in subset]
    )
    evaluations = evaluate_workloads(
        APPLICATIONS, names, strategies, jobs=jobs, backend=backend,
        verify=verify, partitioner=partitioner, cache_dir=cache_dir,
    )
    for name in names:
        evaluation = evaluations[name]
        cells = {}
        for label, strategy in TABLE3_CONFIGS:
            cells[label] = TradeoffRow(
                name,
                label,
                pg=evaluation.performance_gain(strategy),
                ci=evaluation.cost_increase(strategy),
            )
        rows[name] = cells
    return Table3(rows, evaluations)
