"""Evaluation harness regenerating the paper's Figures 7-8 and Table 3."""

from repro.evaluation.runner import (
    Measurement,
    WorkloadEvaluation,
    evaluate_workload,
)
from repro.evaluation.parallel import (
    default_jobs,
    evaluate_workloads,
    resolve_jobs,
)
from repro.evaluation.figures import figure7, figure8
from repro.evaluation.partition_gap import partition_gap
from repro.evaluation.tables import table3
from repro.evaluation.sweeps import duplication_crossover, kernel_size_sweep, sweep
from repro.evaluation.reporting import (
    render_figure7,
    render_figure8,
    render_observability,
    render_partition_gap,
    render_table3,
)

__all__ = [
    "Measurement",
    "WorkloadEvaluation",
    "default_jobs",
    "evaluate_workload",
    "evaluate_workloads",
    "figure7",
    "figure8",
    "duplication_crossover",
    "kernel_size_sweep",
    "partition_gap",
    "render_figure7",
    "render_figure8",
    "render_observability",
    "render_partition_gap",
    "render_table3",
    "resolve_jobs",
    "sweep",
    "table3",
]
