"""Evaluation harness regenerating the paper's Figures 7-8 and Table 3."""

from repro.evaluation.runner import (
    Measurement,
    WorkloadEvaluation,
    evaluate_workload,
)
from repro.evaluation.figures import figure7, figure8
from repro.evaluation.tables import table3
from repro.evaluation.sweeps import duplication_crossover, kernel_size_sweep, sweep
from repro.evaluation.reporting import (
    render_figure7,
    render_figure8,
    render_table3,
)

__all__ = [
    "Measurement",
    "WorkloadEvaluation",
    "evaluate_workload",
    "figure7",
    "figure8",
    "duplication_crossover",
    "kernel_size_sweep",
    "render_figure7",
    "render_figure8",
    "render_table3",
    "sweep",
    "table3",
]
