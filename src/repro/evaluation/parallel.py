"""Parallel evaluation: fan (workload, strategy) pairs across processes.

The figure/table regenerations are embarrassingly parallel at the
(workload, configuration) granularity — every pair is an independent
compile + simulate + verify pipeline.  This module fans those pairs out
over a :class:`concurrent.futures.ProcessPoolExecutor`:

* tasks are shipped as (workload name, strategy name, backend) triples —
  workloads rebuild deterministically from the registry, so nothing
  heavyweight crosses the process boundary going in, and only a plain
  :class:`~repro.evaluation.runner.Measurement` comes back;
* every worker process keeps a content-keyed compiled-program cache
  (:func:`repro.evaluation.runner.module_fingerprint`-keyed), so the
  baseline compile a profile-driven configuration needs is shared with
  the baseline measurement whenever both land in the same worker;
* ``jobs=None`` (or ``<= 1``) runs the exact same code path serially in
  the calling process — results are bit-identical either way, because
  every pipeline stage is deterministic.
"""

import os
from concurrent.futures import ProcessPoolExecutor

from repro.evaluation.runner import (
    WorkloadEvaluation,
    _run_once,
    evaluate_workload,
)
from repro.obs.core import NULL_RECORDER
from repro.partition.strategies import Strategy
from repro.sim.tracing import collect_block_counts

#: per-process content-keyed compiled-program cache (worker side)
_PROCESS_CACHE = {}


def default_jobs():
    """Worker count when the caller asks for "all cores"."""
    return os.cpu_count() or 1


def resolve_jobs(jobs, observe=NULL_RECORDER):
    """Resolve a user-facing ``--jobs`` value to a worker count.

    ``None`` stays serial, ``0`` means "all cores", and an explicit
    count is honoured exactly — a user who types ``--jobs 4`` gets four
    workers even on a smaller machine (the pipelines are CPU-bound, so
    that oversubscribes; the decision is theirs).  The resolution is
    recorded on *observe* instead of silently adjusting anything:
    ``jobs.requested``/``jobs.resolved`` always, ``jobs.cores`` and
    ``jobs.oversubscribed`` when an explicit request exceeds the
    detected core count.
    """
    if jobs is None:
        return None
    if jobs < 0:
        raise ValueError("jobs must be >= 0, got %d" % jobs)
    cores = default_jobs()
    resolved = cores if jobs == 0 else jobs
    observe.counter("jobs.requested", jobs)
    observe.counter("jobs.resolved", resolved)
    if jobs > cores:
        observe.counter("jobs.cores", cores)
        observe.counter("jobs.oversubscribed", resolved - cores)
    return resolved


def _profile_counts(workload, backend, cache):
    """Block counts of the single-bank baseline (deterministic, so a
    worker recomputing them gets the same answer the serial path does)."""
    _measurement, compiled, result = _run_once(
        workload, Strategy.SINGLE_BANK, verify=False, backend=backend,
        cache=cache,
    )
    return collect_block_counts(compiled.program, result)


def parallel_map(fn, argument_tuples, jobs=None):
    """Map a picklable top-level *fn* over argument tuples.

    The shared fan-out primitive for every embarrassingly parallel sweep
    (figure/table regeneration, the fuzz campaign): ``jobs`` in
    (None, 0, 1) runs serially in-process, anything larger fans out over
    a :class:`ProcessPoolExecutor`.  Results come back in input order
    either way, so callers are oblivious to the execution mode.
    """
    argument_tuples = list(argument_tuples)
    if not jobs or jobs == 1 or len(argument_tuples) <= 1:
        return [fn(*arguments) for arguments in argument_tuples]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        return list(pool.map(fn, *zip(*argument_tuples)))


def _measure_pair(name, strategy_name, backend, verify):
    """Worker entry point: one (workload, strategy) measurement."""
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    strategy = Strategy[strategy_name]
    counts = None
    if strategy.needs_profile:
        counts = _profile_counts(workload, backend, _PROCESS_CACHE)
    measurement, _compiled, _result = _run_once(
        workload, strategy, profile_counts=counts, verify=verify,
        backend=backend, cache=_PROCESS_CACHE,
    )
    return name, measurement


def evaluate_workloads(table, names, strategies, jobs=None, backend="interp",
                       verify=True):
    """Evaluate *names* (keys of *table*) under *strategies* in parallel.

    Returns ``{name: WorkloadEvaluation}`` in *names* order.  With
    ``jobs`` in (None, 0, 1) the evaluations run serially in-process
    (sharing one compiled-program cache); with ``jobs > 1`` the
    (workload, strategy) pairs fan out across a process pool.
    """
    if jobs is not None and jobs < 0:
        raise ValueError("jobs must be >= 0, got %d" % jobs)
    if not jobs or jobs == 1:
        cache = {}
        return {
            name: evaluate_workload(
                table[name], strategies, verify=verify, backend=backend,
                cache=cache,
            )
            for name in names
        }

    wanted = [s for s in strategies if s is not Strategy.SINGLE_BANK]
    tasks = []
    for name in names:
        tasks.append((name, Strategy.SINGLE_BANK.name, backend, verify))
        for strategy in wanted:
            tasks.append((name, strategy.name, backend, verify))

    collected = {name: {} for name in names}
    for name, measurement in parallel_map(_measure_pair, tasks, jobs=jobs):
        collected[name][measurement.strategy] = measurement

    return {
        name: WorkloadEvaluation(
            table[name].name, table[name].category, collected[name]
        )
        for name in names
    }
