"""Parallel evaluation: fan (workload, strategy) pairs across processes.

The figure/table regenerations are embarrassingly parallel at the
(workload, configuration) granularity — every pair is an independent
compile + simulate + verify pipeline.  This module fans those pairs out
over a :class:`concurrent.futures.ProcessPoolExecutor`:

* tasks are shipped as (workload name, strategy name, backend) triples —
  workloads rebuild deterministically from the registry, so nothing
  heavyweight crosses the process boundary going in, and only a plain
  :class:`~repro.evaluation.runner.Measurement` comes back;
* every worker process keeps a content-keyed compiled-program cache
  (:func:`repro.evaluation.runner.module_fingerprint`-keyed), so the
  baseline compile a profile-driven configuration needs is shared with
  the baseline measurement whenever both land in the same worker;
* ``jobs=None`` (or ``<= 1``) runs the exact same code path serially in
  the calling process — results are bit-identical either way, because
  every pipeline stage is deterministic.

Two fan-out primitives live here:

* :func:`parallel_map` — the fire-and-forget pool for quick sweeps.
  Worker failures are re-raised *cleanly* in the parent: simulator
  faults come back as the structured :mod:`repro.sim.errors` taxonomy
  (category, pc, backend, seed attached; the raw worker traceback on
  ``remote_traceback``, not vomited to the console), and a
  ``KeyboardInterrupt`` anywhere terminates the whole pool instead of
  orphaning workers;
* :func:`supervised_map` — the resilient runner long campaigns (fault
  injection, fuzzing, sweeps) use: per-task timeouts, bounded retry
  with exponential backoff, dead-worker replacement, checkpoint/resume
  through a :class:`Journal`, and degradation to serial execution when
  workers keep dying.

The worker protocol is **hash-first**: task tuples carry names, seeds,
and content digests — never built modules or compiled programs — and
workers rehydrate through the deterministic registry/generator plus
the content-addressed :mod:`repro.serve.store` tier.  The supervisor
pickles each task exactly once, so per-task pipe payload bytes are
measured for free (``supervised.payload_bytes`` counters and
:func:`payload_stats`, gated by ``benchmarks/bench_compiler.py``).
"""

import json
import os
import pickle
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor

from repro.evaluation.runner import (
    WorkloadEvaluation,
    _run_once,
    evaluate_workload,
)
from repro.obs.core import NULL_RECORDER
from repro.partition.strategies import Strategy
from repro.sim.errors import describe_fault, from_description
from repro.sim.tracing import collect_block_counts

#: per-process content-keyed compiled-program cache (worker side)
_PROCESS_CACHE = {}

#: cumulative supervised-dispatch payload accounting (parent side);
#: read with :func:`payload_stats`, cleared with :func:`reset_payload_stats`
_PAYLOAD_STATS = {"tasks": 0, "bytes": 0}


def payload_stats():
    """Snapshot of supervised task-payload accounting: how many task
    sends crossed a worker pipe and how many pickled bytes they cost —
    the quantity the hash-first protocol exists to keep small."""
    stats = dict(_PAYLOAD_STATS)
    stats["bytes_per_task"] = (
        stats["bytes"] / stats["tasks"] if stats["tasks"] else 0.0
    )
    return stats


def reset_payload_stats():
    """Zero the payload accounting (benchmarks bracket a dispatch with
    this and :func:`payload_stats` to isolate one run's wire bytes)."""
    _PAYLOAD_STATS["tasks"] = 0
    _PAYLOAD_STATS["bytes"] = 0


def _send_task(connection, index, fn, arguments, observe=NULL_RECORDER):
    """Ship one task, pickling exactly once so its payload is measured.

    ``Connection.send_bytes(pickle.dumps(obj))`` is wire-compatible
    with ``Connection.recv()`` on the worker side.
    """
    payload = pickle.dumps((index, fn, arguments))
    _PAYLOAD_STATS["tasks"] += 1
    _PAYLOAD_STATS["bytes"] += len(payload)
    observe.counter("supervised.payload_bytes", len(payload))
    connection.send_bytes(payload)


def default_jobs():
    """Worker count when the caller asks for "all cores"."""
    return os.cpu_count() or 1


def resolve_jobs(jobs, observe=NULL_RECORDER):
    """Resolve a user-facing ``--jobs`` value to a worker count.

    ``None`` stays serial, ``0`` means "all cores", and an explicit
    count is honoured exactly — a user who types ``--jobs 4`` gets four
    workers even on a smaller machine (the pipelines are CPU-bound, so
    that oversubscribes; the decision is theirs).  The resolution is
    recorded on *observe* instead of silently adjusting anything:
    ``jobs.requested``/``jobs.resolved`` always, ``jobs.cores`` and
    ``jobs.oversubscribed`` when an explicit request exceeds the
    detected core count.
    """
    if jobs is None:
        return None
    if jobs < 0:
        raise ValueError("jobs must be >= 0, got %d" % jobs)
    cores = default_jobs()
    resolved = cores if jobs == 0 else jobs
    observe.counter("jobs.requested", jobs)
    observe.counter("jobs.resolved", resolved)
    if jobs > cores:
        observe.counter("jobs.cores", cores)
        observe.counter("jobs.oversubscribed", resolved - cores)
    return resolved


# ----------------------------------------------------------------------
# Task failures (parent-side view of what went wrong in a worker)
# ----------------------------------------------------------------------
class TaskError(RuntimeError):
    """A mapped task failed; carries the worker-side context.

    ``remote_traceback`` holds the formatted worker traceback (for
    logs, not for the console), ``task_key`` the journal key of the
    failing task, ``attempts`` how many tries were spent.  Simulator
    faults are *not* wrapped in this — they re-raise as the structured
    :mod:`repro.sim.errors` taxonomy instead.
    """

    def __init__(self, message, task_key=None, attempts=1,
                 remote_traceback=None):
        super().__init__(message)
        self.task_key = task_key
        self.attempts = attempts
        self.remote_traceback = remote_traceback


class TaskTimeout(TaskError):
    """A supervised task exceeded its per-task timeout on every allowed
    attempt (the worker was terminated each time)."""


class WorkerDied(TaskError):
    """A worker process died (killed, crashed hard) while running a task,
    and the retry budget ran out."""


class TaskFailure:
    """Terminal failure of one supervised task, returned **in-slot**.

    With ``supervised_map(..., on_error="return")`` a task that
    exhausts its budget no longer aborts the whole map: its result slot
    holds one of these instead, and every other task's result survives.
    ``kind`` is the failure class (``TaskTimeout``, ``WorkerDied``, or
    the original exception type), ``attempts`` how many tries were
    spent, ``task_key`` the journal key of the failing task, and
    ``category`` the :mod:`repro.sim.errors` taxonomy when the failure
    came from the simulator (None otherwise).  Failures are *not*
    recorded in the journal as completed, so a resumed run retries
    them.
    """

    __slots__ = ("kind", "message", "category", "attempts", "task_key",
                 "remote_traceback")

    def __init__(self, kind, message, attempts=1, task_key=None,
                 category=None, remote_traceback=None):
        self.kind = kind
        self.message = message
        self.attempts = attempts
        self.task_key = task_key
        self.category = category
        self.remote_traceback = remote_traceback

    def describe(self):
        """JSON-able dict form (the :func:`repro.sim.errors.describe_fault`
        shape, plus ``attempts``)."""
        description = {
            "kind": self.kind,
            "message": self.message,
            "category": self.category,
            "attempts": self.attempts,
        }
        if self.task_key is not None:
            description["task_key"] = self.task_key
        return description

    def __repr__(self):
        return "<TaskFailure %s after %d attempt(s): %s>" % (
            self.kind, self.attempts, self.message,
        )


def _raise_remote(description, task_key=None, attempts=1):
    """Re-raise a worker failure described by
    :func:`repro.sim.errors.describe_fault` as a clean parent-side
    exception: the structured sim taxonomy when the failure came from
    the simulator, :class:`TaskError` otherwise."""
    if description.get("kind") == "KeyboardInterrupt":
        raise KeyboardInterrupt()
    if description.get("category") is not None:
        raise from_description(description)
    error = TaskError(
        "%s: %s" % (description.get("kind"), description.get("message")),
        task_key=task_key,
        attempts=attempts,
        remote_traceback=description.get("traceback"),
    )
    raise error


def _guarded_call(pair):
    """Worker shim for :func:`parallel_map`: never lets an exception
    escape into the pool machinery — failures come back as data."""
    fn, arguments = pair
    try:
        return ("ok", fn(*arguments))
    except BaseException as exc:  # noqa: BLE001 — shipped to the parent
        return ("error", describe_fault(exc))


def _terminate_pool(pool):
    """Hard-stop a :class:`ProcessPoolExecutor`: cancel queued work and
    terminate the worker processes so a ``KeyboardInterrupt`` (or any
    abort) never leaves orphans behind."""
    pool.shutdown(wait=False, cancel_futures=True)
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        process.terminate()
    for process in list(processes.values()):
        process.join(timeout=5)


def parallel_map(fn, argument_tuples, jobs=None):
    """Map a picklable top-level *fn* over argument tuples.

    The shared fan-out primitive for every embarrassingly parallel sweep
    (figure/table regeneration, the fuzz campaign): ``jobs`` in
    (None, 0, 1) runs serially in-process, anything larger fans out over
    a :class:`ProcessPoolExecutor`.  Results come back in input order
    either way, so callers are oblivious to the execution mode.

    Worker failures re-raise cleanly in the parent (structured sim
    taxonomy or :class:`TaskError`, never a raw remote traceback), and
    any abort — including ``KeyboardInterrupt`` — terminates the pool's
    worker processes before propagating.
    """
    argument_tuples = list(argument_tuples)
    if not jobs or jobs == 1 or len(argument_tuples) <= 1:
        return [fn(*arguments) for arguments in argument_tuples]
    pool = ProcessPoolExecutor(max_workers=jobs)
    try:
        outcomes = list(
            pool.map(_guarded_call, [(fn, a) for a in argument_tuples])
        )
    except BaseException:
        _terminate_pool(pool)
        raise
    pool.shutdown()
    results = []
    for status, payload in outcomes:
        if status == "error":
            _raise_remote(payload)
        results.append(payload)
    return results


# ----------------------------------------------------------------------
# Batched fan-out (lockstep lanes instead of processes)
# ----------------------------------------------------------------------
def program_fingerprint(program):
    """Content hash of a compiled program: the formatted instruction
    stream plus function entries — what determines whether two tasks can
    share one lockstep batch.  Deterministic compiles of the same module
    under the same strategy fingerprint identically, so campaign tasks
    group even when each built its program independently."""
    import hashlib

    digest = hashlib.sha256()
    for instruction in program.instructions:
        digest.update(repr(instruction).encode())
    digest.update(repr(sorted(program.function_entries.items())).encode())
    return digest.hexdigest()


class BatchTaskResult:
    """Outcome of one :func:`batch_map` task.

    ``result`` is the :class:`~repro.sim.simulator.SimulationResult`
    and ``outputs`` maps each requested global to its final value(s);
    on a simulated fault both are None and ``error`` holds the
    exception the scalar backend would have raised.
    """

    __slots__ = ("result", "outputs", "error")

    def __init__(self, result=None, outputs=None, error=None):
        self.result = result
        self.outputs = outputs
        self.error = error


def batch_map(tasks, lanes=64, backend="batch", observe=NULL_RECORDER):
    """Run simulation *tasks*, batching compatible ones into lockstep lanes.

    The third fan-out primitive, sibling to :func:`parallel_map` (process
    pool) and :func:`supervised_map` (resilient pool): instead of paying
    one process and one simulator per instance, tasks whose compiled
    programs share a content fingerprint execute together on the
    :class:`~repro.sim.batchsim.BatchSimulator`, up to *lanes* instances
    per lockstep slab.  Each task is a ``(program, writes, reads)``
    triple:

    * ``program`` — a compiled machine program (tasks group by
      :func:`program_fingerprint`, so identical programs batch no matter
      how many times they were compiled);
    * ``writes`` — ``{global name: value or values}`` applied to that
      instance before the run (its per-instance inputs);
    * ``reads`` — iterable of global names to read back after the run.

    Results come back in task order as :class:`BatchTaskResult`.  With a
    scalar *backend* name (``interp``/``fast``/``jit``) the same tasks
    run one simulator per instance instead — bit-identical by the batch
    backend's contract, which is what the speedup benchmark and the
    differential tests compare against.
    """
    from repro.sim.fastsim import make_simulator

    tasks = [(program, dict(writes or {}), tuple(reads))
             for program, writes, reads in tasks]
    results = [None] * len(tasks)
    if backend != "batch":
        for index, (program, writes, reads) in enumerate(tasks):
            simulator = make_simulator(program, backend=backend)
            for name, values in writes.items():
                simulator.write_global(name, values)
            try:
                result = simulator.run()
            except Exception as error:  # parity with LaneOutcome.error
                results[index] = BatchTaskResult(error=error)
                continue
            outputs = {name: simulator.read_global(name) for name in reads}
            results[index] = BatchTaskResult(result, outputs)
        return results

    from repro.sim.batchsim import BatchSimulator

    groups = {}
    fingerprints = {}
    for index, (program, _writes, _reads) in enumerate(tasks):
        fingerprint = fingerprints.get(id(program))
        if fingerprint is None:
            fingerprint = program_fingerprint(program)
            fingerprints[id(program)] = fingerprint
        groups.setdefault(fingerprint, (program, []))[1].append(index)
    observe.counter("batch.groups", len(groups))
    for program, members in groups.values():
        for start in range(0, len(members), lanes):
            slab = members[start : start + lanes]
            observe.counter("batch.slabs")
            observe.counter("batch.instances", len(slab))
            simulator = BatchSimulator(program, lanes=len(slab))
            for lane, index in enumerate(slab):
                for name, values in tasks[index][1].items():
                    simulator.write_global_lane(lane, name, values)
            for lane, outcome in enumerate(simulator.run_batch()):
                index = slab[lane]
                reads = tasks[index][2]
                if outcome.error is not None:
                    results[index] = BatchTaskResult(error=outcome.error)
                else:
                    outputs = {
                        name: outcome.state.read_global(name)
                        for name in reads
                    }
                    results[index] = BatchTaskResult(outcome.result, outputs)
    return results


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------
class Journal:
    """Append-only JSON-lines checkpoint journal for resumable runs.

    One line per completed task: ``{"key": <canonical args>, "result":
    <JSON result>}``, flushed on every record so an interrupt (SIGINT, a
    killed worker, a power cut mid-write) loses at most the line being
    written — a truncated or corrupt trailing line is skipped on load.
    Task results must therefore be JSON-serializable; tuples come back
    as lists on resume.

    :func:`supervised_map` additionally checkpoints tasks *in flight*:
    ``{"key": ..., "attempt": N, "started": true}`` is appended when
    attempt N is dispatched.  On load, the highest started attempt of
    every task without a completed record lands in ``started`` — how a
    resumed run knows an interrupted attempt already consumed retry
    budget, charging it exactly once instead of zero times (an
    infinite crash/resume loop) or twice.

    Consumed by :func:`supervised_map` (and through it the fault and
    fuzz campaigns) and by :func:`repro.evaluation.sweeps.sweep`.
    """

    def __init__(self, path):
        self.path = path
        #: canonical key -> recorded result, as loaded plus appended
        self.completed = {}
        #: canonical key -> highest attempt checkpointed as in flight
        self.started = {}
        self._handle = None
        if path and os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                for line in handle:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        entry = json.loads(line)
                    except ValueError:
                        continue  # torn write from a killed process
                    if not (isinstance(entry, dict) and "key" in entry):
                        continue
                    if entry.get("started"):
                        attempt = int(entry.get("attempt", 1))
                        if attempt > self.started.get(entry["key"], 0):
                            self.started[entry["key"]] = attempt
                    else:
                        self.completed[entry["key"]] = entry.get("result")
                        # the completion supersedes any in-flight
                        # checkpoints this task left behind
                        self.started.pop(entry["key"], None)

    @staticmethod
    def key_for(arguments):
        """Canonical JSON key for one task's argument tuple (stable
        across runs and processes, so resumed runs match)."""
        return json.dumps(list(arguments), sort_keys=True, default=repr)

    def __contains__(self, key):
        return key in self.completed

    def __len__(self):
        return len(self.completed)

    def _append(self, entry):
        if self._handle is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._handle = open(self.path, "a", encoding="utf-8")
            if self._handle.tell():
                # Heal a torn trailing line (a write killed mid-record)
                # so the next record does not concatenate onto it.
                with open(self.path, "rb") as probe:
                    probe.seek(-1, os.SEEK_END)
                    if probe.read(1) != b"\n":
                        self._handle.write("\n")
        self._handle.write(json.dumps(entry, sort_keys=True) + "\n")
        self._handle.flush()

    def record(self, key, result):
        """Append one completed entry and flush it to disk immediately
        (reopens the file if the journal was closed)."""
        self._append({"key": key, "result": result})
        self.completed[key] = result
        self.started.pop(key, None)

    def mark_started(self, key, attempt):
        """Checkpoint attempt *attempt* of task *key* as in flight, so
        a supervisor death mid-task charges the attempt exactly once on
        resume."""
        self._append({"key": key, "attempt": attempt, "started": True})
        if attempt > self.started.get(key, 0):
            self.started[key] = attempt

    def close(self):
        """Flush and close the underlying file (the journal stays usable;
        :meth:`record` reopens on demand)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ----------------------------------------------------------------------
# Supervised fan-out
# ----------------------------------------------------------------------
class _Worker:
    """One supervised worker process plus its duplex pipe and the task
    it is currently running (``(index, attempt, started_at)`` or None)."""

    __slots__ = ("process", "connection", "task")


def _supervised_worker(connection):
    """Worker loop: receive ``(index, fn, arguments)``, send back
    ``(index, "ok", result)`` or ``(index, "error", description)``.
    Exits on EOF or an explicit ``None`` sentinel."""
    while True:
        try:
            item = connection.recv()
        except (EOFError, OSError):
            return
        if item is None:
            return
        index, fn, arguments = item
        try:
            result = fn(*arguments)
        except BaseException as exc:  # noqa: BLE001 — shipped to the parent
            try:
                connection.send((index, "error", describe_fault(exc)))
            except (OSError, ValueError):
                return
            if isinstance(exc, SystemExit):
                return
        else:
            try:
                connection.send((index, "ok", result))
            except (OSError, ValueError):
                return


def _shutdown_workers(workers):
    """Terminate every worker process and close its pipe — the
    KeyboardInterrupt/abort path that guarantees no orphans survive the
    supervisor."""
    for worker in workers:
        try:
            worker.connection.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
    for worker in workers:
        worker.process.join(timeout=5)
    workers.clear()


def _pop_eligible(queue, now):
    """Pop the first queue entry whose backoff delay has elapsed (the
    queue holds ``(index, attempt, eligible_at)``), or None."""
    for _ in range(len(queue)):
        entry = queue.popleft()
        if entry[2] <= now:
            return entry
        queue.append(entry)
    return None


def _run_serial(fn, arguments, pending, results, retries, backoff,
                retry_errors, journal, emit, observe, initial=None,
                on_error="raise"):
    """Serial leg of :func:`supervised_map`: same retry and journal
    semantics, no timeouts (nothing to terminate in-process).

    ``initial`` maps task index -> first attempt number (resumed tasks
    whose prior attempt was checkpointed in flight start past 1)."""
    initial = initial or {}
    for index in pending:
        attempt = initial.get(index, 1)
        failure = None
        while True:
            if journal is not None:
                journal.mark_started(Journal.key_for(arguments[index]), attempt)
            try:
                result = fn(*arguments[index])
            except KeyboardInterrupt:
                raise
            except Exception as exc:
                if retry_errors and attempt <= retries:
                    delay = backoff * (2 ** (attempt - 1))
                    observe.counter("supervised.retries")
                    emit(
                        "task %d failed; retry %d/%d in %.2gs"
                        % (index, attempt, retries, delay)
                    )
                    time.sleep(delay)
                    attempt += 1
                    continue
                if on_error == "return":
                    description = describe_fault(exc)
                    failure = TaskFailure(
                        kind=description.get("kind", type(exc).__name__),
                        message=description.get("message", str(exc)),
                        attempts=attempt,
                        task_key=Journal.key_for(arguments[index]),
                        category=description.get("category"),
                        remote_traceback=description.get("traceback"),
                    )
                    observe.counter("supervised.failed")
                    break
                raise
            break
        if failure is not None:
            # terminal failures stay out of the journal: a resumed run
            # should retry them, not replay them as completed
            results[index] = failure
            continue
        results[index] = result
        if journal is not None:
            journal.record(Journal.key_for(arguments[index]), result)


def _run_supervised_pool(fn, arguments, pending, results, jobs, timeouts,
                         retries, backoff, retry_errors, degrade_after,
                         journal, emit, observe, initial=None,
                         on_error="raise"):
    """Pool leg of :func:`supervised_map` (see its docstring for the
    contract).  Own Process/Pipe supervisor rather than an executor:
    per-task deadlines require terminating individual workers, which
    :class:`ProcessPoolExecutor` cannot do.  ``timeouts`` is a per-task
    list (entries may be None for "no deadline")."""
    import multiprocessing

    context = multiprocessing.get_context()
    initial = initial or {}
    if degrade_after is None:
        degrade_after = max(3, jobs + 1)
    queue = deque((index, initial.get(index, 1), 0.0) for index in pending)
    remaining = len(pending)
    workers = []
    consecutive_failures = 0

    def spawn():
        parent_end, child_end = context.Pipe()
        process = context.Process(
            target=_supervised_worker, args=(child_end,), daemon=True
        )
        process.start()
        child_end.close()
        worker = _Worker()
        worker.process = process
        worker.connection = parent_end
        worker.task = None
        workers.append(worker)

    def retire(worker):
        if worker in workers:
            workers.remove(worker)
        try:
            worker.connection.close()
        except OSError:
            pass
        if worker.process.is_alive():
            worker.process.terminate()
        worker.process.join(timeout=5)

    def record_result(index, result):
        nonlocal remaining, consecutive_failures
        results[index] = result
        remaining -= 1
        consecutive_failures = 0
        observe.counter("supervised.completed")
        if journal is not None:
            journal.record(Journal.key_for(arguments[index]), result)

    def record_failure(index, failure):
        # terminal failure returned in-slot (on_error="return"); *not*
        # journaled as completed, so a resumed run retries the task
        nonlocal remaining
        results[index] = failure
        remaining -= 1
        observe.counter("supervised.failed")

    def fail_task(index, attempt, error_cls, reason, description=None,
                  allow_retry=True):
        nonlocal consecutive_failures
        consecutive_failures += 1
        if allow_retry and attempt <= retries:
            delay = backoff * (2 ** (attempt - 1))
            observe.counter("supervised.retries")
            emit(
                "task %d %s; retry %d/%d in %.2gs"
                % (index, reason, attempt, retries, delay)
            )
            queue.append((index, attempt + 1, time.monotonic() + delay))
            return
        if on_error == "return":
            kind = error_cls.__name__
            message = "task %d %s after %d attempt(s)" % (
                index, reason, attempt,
            )
            category = remote_traceback = None
            if description is not None:
                kind = description.get("kind", kind)
                message = description.get("message", message)
                category = description.get("category")
                remote_traceback = description.get("traceback")
            record_failure(index, TaskFailure(
                kind=kind,
                message=message,
                attempts=attempt,
                task_key=Journal.key_for(arguments[index]),
                category=category,
                remote_traceback=remote_traceback,
            ))
            return
        if description is not None and description.get("category") is not None:
            _raise_remote(
                description,
                task_key=Journal.key_for(arguments[index]),
                attempts=attempt,
            )
        error = error_cls(
            "task %d %s after %d attempt(s)" % (index, reason, attempt),
            task_key=Journal.key_for(arguments[index]),
            attempts=attempt,
        )
        if description is not None:
            error.remote_traceback = description.get("traceback")
        raise error

    from multiprocessing.connection import wait as connection_wait

    for _ in range(min(jobs, remaining)):
        spawn()
    try:
        while remaining:
            now = time.monotonic()
            if consecutive_failures >= degrade_after:
                emit(
                    "%d consecutive worker failures; degrading to serial "
                    "execution" % consecutive_failures
                )
                observe.counter("supervised.degraded")
                for worker in list(workers):
                    if worker.task is not None:
                        queue.append((worker.task[0], worker.task[1], 0.0))
                        worker.task = None
                    retire(worker)
                serial_initial = {}
                for entry in queue:
                    if entry[1] > serial_initial.get(entry[0], 0):
                        serial_initial[entry[0]] = entry[1]
                serial_pending = sorted(serial_initial)
                queue.clear()
                _run_serial(
                    fn, arguments, serial_pending, results, retries, backoff,
                    retry_errors, journal, emit, observe,
                    initial=serial_initial, on_error=on_error,
                )
                return
            # Reap idle workers that died between tasks, then dispatch.
            for worker in [
                w for w in list(workers)
                if w.task is None and not w.process.is_alive()
            ]:
                retire(worker)
            idle = [w for w in workers if w.task is None]
            while idle and queue:
                entry = _pop_eligible(queue, now)
                if entry is None:
                    break
                index, attempt, _eligible = entry
                worker = idle.pop()
                if journal is not None:
                    journal.mark_started(
                        Journal.key_for(arguments[index]), attempt
                    )
                try:
                    _send_task(
                        worker.connection, index, fn, arguments[index],
                        observe=observe,
                    )
                except (OSError, BrokenPipeError):
                    retire(worker)
                    queue.append((index, attempt, now))
                    continue
                worker.task = (index, attempt, time.monotonic())
            busy = [w for w in workers if w.task is not None]
            # Replace terminated workers while work remains.
            while len(workers) < min(jobs, len(busy) + len(queue)):
                spawn()
            if not busy:
                if queue:
                    next_eligible = min(entry[2] for entry in queue)
                    time.sleep(
                        min(max(next_eligible - time.monotonic(), 0.01), 0.5)
                    )
                    continue
                time.sleep(0.01)
                continue
            wait_for = 0.5
            deadlines = [
                w.task[2] + timeouts[w.task[0]]
                for w in busy
                if timeouts[w.task[0]] is not None
            ]
            if deadlines:
                wait_for = min(wait_for, min(deadlines) - time.monotonic())
            if queue:
                next_eligible = min(entry[2] for entry in queue)
                wait_for = min(wait_for, next_eligible - time.monotonic())
            ready = connection_wait(
                [w.connection for w in busy], max(wait_for, 0.01)
            )
            by_connection = {w.connection: w for w in workers}
            for connection in ready:
                worker = by_connection.get(connection)
                if worker is None:
                    continue
                task = worker.task
                try:
                    message = connection.recv()
                except (EOFError, OSError):
                    observe.counter("supervised.worker_deaths")
                    retire(worker)
                    if task is not None:
                        fail_task(task[0], task[1], WorkerDied, "worker died")
                    continue
                worker.task = None
                index, status, payload = message
                if status == "ok":
                    record_result(index, payload)
                    continue
                if payload.get("kind") == "KeyboardInterrupt":
                    raise KeyboardInterrupt()
                attempt = task[1] if task is not None else 1
                fail_task(
                    index, attempt, TaskError,
                    "failed (%s)" % payload.get("kind"), payload,
                    allow_retry=retry_errors,
                )
            now = time.monotonic()
            for worker in list(workers):
                if worker.task is None:
                    continue
                index, attempt, started = worker.task
                limit = timeouts[index]
                if limit is not None and now - started > limit:
                    observe.counter("supervised.timeouts")
                    worker.task = None
                    retire(worker)
                    fail_task(
                        index, attempt, TaskTimeout,
                        "timed out after %.2gs" % limit,
                    )
    finally:
        _shutdown_workers(workers)


def supervised_map(fn, argument_tuples, jobs=None, timeout=None, retries=2,
                   backoff=0.25, journal=None, retry_errors=False,
                   degrade_after=None, log=None, observe=NULL_RECORDER,
                   on_error="raise"):
    """Resilient :func:`parallel_map`: supervise every task to completion.

    The campaign runner behind ``repro faults`` (and, via the
    ``--journal`` options, the fuzzer, sweeps, and the serving
    dispatcher).  Semantics:

    * ``jobs`` in (None, 0, 1) runs serially in-process; otherwise
      *jobs* supervised worker processes are spawned, each running one
      task at a time over a duplex pipe;
    * ``timeout`` (seconds, pool mode only) bounds each task attempt;
      an overrunning worker is **terminated** and the task retried.  A
      scalar applies to every task; a sequence supplies one deadline
      per task (entries may be None for "no deadline") — how the
      service propagates per-job ``deadline_ms`` values into one
      coalesced dispatch;
    * a worker that dies mid-task (killed, segfault, ``os._exit``) is
      replaced and its task retried — timeouts and deaths always
      consume the ``retries`` budget with exponential ``backoff``
      (``backoff * 2**(attempt-1)`` seconds); exceptions *raised by fn*
      only retry when ``retry_errors`` is set, otherwise they re-raise
      immediately (structured sim taxonomy / :class:`TaskError`);
    * ``on_error`` controls what an *exhausted* task does to the rest
      of the map: ``"raise"`` (default) aborts the whole run with the
      task's exception; ``"return"`` places a :class:`TaskFailure` in
      that task's result slot and keeps going, so one poisoned task in
      a coalesced service batch cannot sink its groupmates.  Failures
      are never journaled as completed;
    * ``journal`` (a path or :class:`Journal`) records every completed
      task; on a rerun, journaled tasks are skipped and their recorded
      results returned — so an interrupted campaign resumes where it
      stopped.  Results must be JSON-serializable (tuples come back as
      lists);
    * after ``degrade_after`` consecutive worker-level failures
      (default ``max(3, jobs + 1)``) the pool is torn down and the rest
      of the run degrades to serial in-process execution;
    * ``KeyboardInterrupt`` — in the parent or raised by a task —
      terminates every worker, flushes the journal, and re-raises.

    Returns results in input order, like :func:`parallel_map`.
    """
    if on_error not in ("raise", "return"):
        raise ValueError(
            "on_error must be 'raise' or 'return', got %r" % (on_error,)
        )
    arguments = [tuple(a) for a in argument_tuples]
    if timeout is None or isinstance(timeout, (int, float)):
        timeouts = [timeout] * len(arguments)
    else:
        timeouts = list(timeout)
        if len(timeouts) != len(arguments):
            raise ValueError(
                "timeout sequence length %d != task count %d"
                % (len(timeouts), len(arguments))
            )
    if isinstance(journal, str):
        journal = Journal(journal)
    emit = log if log is not None else (lambda message: None)
    results = [None] * len(arguments)
    pending = []
    initial = {}
    for index, task_arguments in enumerate(arguments):
        key = Journal.key_for(task_arguments)
        if journal is not None and key in journal.completed:
            results[index] = journal.completed[key]
            observe.counter("supervised.resumed")
            continue
        pending.append(index)
        if journal is not None and key in journal.started:
            # the attempt interrupted by the supervisor's death already
            # consumed one unit of retry budget — charge it once, not
            # zero times (unbounded crash loops) or twice.
            initial[index] = journal.started[key] + 1
            observe.counter("supervised.resumed_inflight")
    observe.counter("supervised.tasks", len(pending))
    if not pending:
        return results
    try:
        if not jobs or jobs == 1 or (
            len(pending) == 1 and timeouts[pending[0]] is None
        ):
            _run_serial(
                fn, arguments, pending, results, retries, backoff,
                retry_errors, journal, emit, observe, initial=initial,
                on_error=on_error,
            )
        else:
            _run_supervised_pool(
                fn, arguments, pending, results, jobs, timeouts, retries,
                backoff, retry_errors, degrade_after, journal, emit, observe,
                initial=initial, on_error=on_error,
            )
    finally:
        if journal is not None:
            journal.close()
    return results


def _profile_counts(workload, backend, cache):
    """Block counts of the single-bank baseline (deterministic, so a
    worker recomputing them gets the same answer the serial path does)."""
    _measurement, compiled, result = _run_once(
        workload, Strategy.SINGLE_BANK, verify=False, backend=backend,
        cache=cache,
    )
    return collect_block_counts(compiled.program, result)


def _worker_cache(cache_dir):
    """The compile cache a worker (or the serial leg) reads through:
    the plain per-process dict without a *cache_dir*, the persistent
    artifact-store tier (:func:`repro.serve.store.process_compile_cache`,
    fronted by the same per-process dict) with one."""
    if cache_dir is None:
        return _PROCESS_CACHE
    from repro.serve.store import process_compile_cache

    return process_compile_cache(cache_dir, memory=_PROCESS_CACHE)


def _measure_pair(name, strategy_name, backend, verify, partitioner="greedy",
                  cache_dir=None):
    """Worker entry point: one (workload, strategy) measurement."""
    from repro.workloads.registry import get_workload

    workload = get_workload(name)
    strategy = Strategy[strategy_name]
    cache = _worker_cache(cache_dir)
    counts = None
    if strategy.needs_profile:
        counts = _profile_counts(workload, backend, cache)
    measurement, _compiled, _result = _run_once(
        workload, strategy, profile_counts=counts, verify=verify,
        backend=backend, cache=cache, partitioner=partitioner,
    )
    return name, measurement


def evaluate_workloads(table, names, strategies, jobs=None, backend="interp",
                       verify=True, partitioner="greedy", cache_dir=None):
    """Evaluate *names* (keys of *table*) under *strategies* in parallel.

    Returns ``{name: WorkloadEvaluation}`` in *names* order.  With
    ``jobs`` in (None, 0, 1) the evaluations run serially in-process
    (sharing one compiled-program cache); with ``jobs > 1`` the
    (workload, strategy) pairs fan out across a process pool.
    ``partitioner`` selects the interference-graph partitioner for every
    CB-family configuration (measurements are deterministic per
    partitioner, so serial and fanned-out runs agree for any choice).
    ``cache_dir`` routes every compile through the persistent artifact
    store at that path (:mod:`repro.serve.store`) — serial and worker
    legs alike — so repeated evaluations skip recompilation entirely;
    results stay bit-identical because cache hits return the same
    deterministic compile.
    """
    if jobs is not None and jobs < 0:
        raise ValueError("jobs must be >= 0, got %d" % jobs)
    if not jobs or jobs == 1:
        cache = {} if cache_dir is None else _worker_cache(cache_dir)
        return {
            name: evaluate_workload(
                table[name], strategies, verify=verify, backend=backend,
                cache=cache, partitioner=partitioner,
            )
            for name in names
        }

    wanted = [s for s in strategies if s is not Strategy.SINGLE_BANK]
    tasks = []
    for name in names:
        tasks.append(
            (name, Strategy.SINGLE_BANK.name, backend, verify, partitioner,
             cache_dir)
        )
        for strategy in wanted:
            tasks.append(
                (name, strategy.name, backend, verify, partitioner, cache_dir)
            )

    collected = {name: {} for name in names}
    for name, measurement in parallel_map(_measure_pair, tasks, jobs=jobs):
        collected[name][measurement.strategy] = measurement

    return {
        name: WorkloadEvaluation(
            table[name].name, table[name].category, collected[name]
        )
        for name in names
    }
