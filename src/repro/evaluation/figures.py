"""Regenerate the data series of paper Figures 7 and 8.

Figure 7 plots the percent performance gain of CB partitioning and Ideal
(dual-ported) memory over the single-bank baseline for the 12 kernels;
Figure 8 adds the Pr (profile-weighted) and Dup (partial-duplication)
configurations for the 11 applications.
"""

from repro.evaluation.paper_data import APPLICATION_ORDER, KERNEL_ORDER
from repro.evaluation.parallel import evaluate_workloads
from repro.partition.strategies import Strategy
from repro.workloads.registry import APPLICATIONS, KERNELS

FIGURE7_STRATEGIES = (Strategy.CB, Strategy.IDEAL)
FIGURE8_STRATEGIES = (
    Strategy.CB,
    Strategy.CB_PROFILE,
    Strategy.CB_DUP,
    Strategy.IDEAL,
)


class FigureSeries:
    """One figure's data: benchmark order plus per-config gain series."""

    def __init__(self, title, order, labels, gains, evaluations):
        self.title = title
        #: benchmark names in the paper's x-axis order
        self.order = order
        #: configuration labels in display order (e.g. ["CB", "Ideal"])
        self.labels = labels
        #: label -> {benchmark -> percent gain}
        self.gains = gains
        #: benchmark -> WorkloadEvaluation (for further inspection)
        self.evaluations = evaluations

    def series(self, label):
        """Gains for configuration *label*, in plot (x-axis) order."""
        return [self.gains[label][name] for name in self.order]


def _collect(title, table, order, strategies, labels, verify=True, subset=None,
             jobs=None, backend="interp", partitioner="greedy",
             cache_dir=None):
    names = order if subset is None else [n for n in order if n in subset]
    gains = {label: {} for label in labels}
    evaluations = evaluate_workloads(
        table, names, strategies, jobs=jobs, backend=backend, verify=verify,
        partitioner=partitioner, cache_dir=cache_dir,
    )
    for name in names:
        evaluation = evaluations[name]
        for strategy, label in zip(strategies, labels):
            gains[label][name] = evaluation.gain_percent(strategy)
    return FigureSeries(title, names, list(labels), gains, evaluations)


def figure7(verify=True, subset=None, jobs=None, backend="interp",
            partitioner="greedy", cache_dir=None):
    """Figure 7: kernel performance gains (CB and Ideal)."""
    return _collect(
        "Figure 7: Performance Gain for DSP Kernels",
        KERNELS,
        KERNEL_ORDER,
        FIGURE7_STRATEGIES,
        ("CB", "Ideal"),
        verify=verify,
        subset=subset,
        jobs=jobs,
        backend=backend,
        partitioner=partitioner,
        cache_dir=cache_dir,
    )


def figure8(verify=True, subset=None, jobs=None, backend="interp",
            partitioner="greedy", cache_dir=None):
    """Figure 8: application gains (CB, Pr, Dup, Ideal)."""
    return _collect(
        "Figure 8: Performance Gain for DSP Applications",
        APPLICATIONS,
        APPLICATION_ORDER,
        FIGURE8_STRATEGIES,
        ("CB", "Pr", "Dup", "Ideal"),
        verify=verify,
        subset=subset,
        jobs=jobs,
        backend=backend,
        partitioner=partitioner,
        cache_dir=cache_dir,
    )
