"""Bit-level encoding of long instructions.

Programmable DSPs keep code small with *tightly encoded* instructions
(paper Section 1.1): rather than fixed 9-slot VLIW words full of NOPs,
an instruction carries a presence mask and only the active slots.  This
module defines such an encoding for the model architecture, so that

* every long instruction has a concrete bit-accurate size,
* programs can be packed to binary and decoded back (round-tripped), and
* the cost model can optionally charge instruction memory by *packed*
  words instead of the paper's one-word-per-instruction simplification.

Format
------
Each instruction is ``[9-bit unit mask][2-bit loop-end count]`` followed
by the active slots in canonical unit order.  A slot is::

    [7-bit opcode][dest: 1+5 bits][source count: 2][sources...]

and each source is ``[2-bit kind]`` + payload: register (2-bit class +
5-bit number), small immediate (24-bit signed), or constant-pool index
(16 bits) for values that do not fit (all floats go to the pool).
Memory operations add a 12-bit symbol index; control operations a
16-bit target/callee index.  The pool and the index tables are emitted
alongside the code and counted by :func:`packed_size_words`.
"""

from repro.ir.operations import OpCode, Operation
from repro.ir.symbols import MemoryBank
from repro.ir.types import RegClass
from repro.ir.values import Immediate, Label, is_register
from repro.machine.instruction import LongInstruction
from repro.machine.resources import ALL_UNITS

_OPCODES = list(OpCode)
_OPCODE_INDEX = {opcode: i for i, opcode in enumerate(_OPCODES)}
_CLASSES = [RegClass.ADDR, RegClass.INT, RegClass.FLOAT]
_CLASS_INDEX = {rclass: i for i, rclass in enumerate(_CLASSES)}
_BANKS = [None, MemoryBank.X, MemoryBank.Y, MemoryBank.BOTH]
_BANK_INDEX = {bank: i for i, bank in enumerate(_BANKS)}

_IMM_BITS = 24
_IMM_MIN = -(1 << (_IMM_BITS - 1))
_IMM_MAX = (1 << (_IMM_BITS - 1)) - 1

_KIND_NONE = 0
_KIND_REG = 1
_KIND_IMM = 2
_KIND_POOL = 3


class _BitWriter:
    def __init__(self):
        self.bits = []

    def write(self, value, width):
        if not 0 <= value < (1 << width):
            raise ValueError("value %d does not fit in %d bits" % (value, width))
        for position in range(width - 1, -1, -1):
            self.bits.append((value >> position) & 1)

    def __len__(self):
        return len(self.bits)


class _BitReader:
    def __init__(self, bits):
        self.bits = bits
        self.position = 0

    def read(self, width):
        value = 0
        for _ in range(width):
            value = (value << 1) | self.bits[self.position]
            self.position += 1
        return value


class EncodedProgram:
    """A program packed to bits, with its side tables."""

    def __init__(self, instruction_bits, pool, symbols, names):
        #: list of per-instruction bit lists
        self.instruction_bits = instruction_bits
        #: constant pool (floats and out-of-range integers)
        self.pool = pool
        #: ordered symbol list for memory operations
        self.symbols = symbols
        #: ordered label/callee name list for control operations
        self.names = names

    @property
    def code_bits(self):
        return sum(len(bits) for bits in self.instruction_bits)

    def words(self, word_bits=32):
        """Packed size in words: code (bit-packed) plus the pool."""
        code_words = -(-self.code_bits // word_bits)
        return code_words + len(self.pool)


class Encoder:
    """Encodes long instructions (and whole programs)."""

    def __init__(self):
        self.pool = []
        self._pool_index = {}
        self.symbols = []
        self._symbol_index = {}
        self.names = []
        self._name_index = {}

    # -- interning ------------------------------------------------------
    def _pool(self, value):
        key = (type(value).__name__, value)
        if key not in self._pool_index:
            self._pool_index[key] = len(self.pool)
            self.pool.append(value)
        return self._pool_index[key]

    def _symbol(self, symbol):
        if id(symbol) not in self._symbol_index:
            self._symbol_index[id(symbol)] = len(self.symbols)
            self.symbols.append(symbol)
        return self._symbol_index[id(symbol)]

    def _name(self, name):
        if name not in self._name_index:
            self._name_index[name] = len(self.names)
            self.names.append(name)
        return self._name_index[name]

    # -- encoding ---------------------------------------------------------
    def _write_source(self, writer, source):
        if is_register(source):
            writer.write(_KIND_REG, 2)
            writer.write(_CLASS_INDEX[source.rclass], 2)
            number = source.physical if source.physical is not None else 0
            writer.write(number, 5)
        elif isinstance(source, Immediate):
            value = source.value
            if isinstance(value, int) and _IMM_MIN <= value <= _IMM_MAX:
                writer.write(_KIND_IMM, 2)
                writer.write(value - _IMM_MIN, _IMM_BITS)
            else:
                writer.write(_KIND_POOL, 2)
                writer.write(self._pool(value), 16)
        else:
            raise ValueError("cannot encode source %r" % (source,))

    def encode_operation(self, writer, op):
        writer.write(_OPCODE_INDEX[op.opcode], 7)
        if op.dest is not None:
            writer.write(1, 1)
            writer.write(_CLASS_INDEX[op.dest.rclass], 2)
            number = op.dest.physical if op.dest.physical is not None else 0
            writer.write(number, 5)
        else:
            writer.write(0, 1)
        writer.write(len(op.sources), 2)
        for source in op.sources:
            self._write_source(writer, source)
        if op.is_memory:
            writer.write(self._symbol(op.symbol), 12)
            writer.write(_BANK_INDEX[op.bank], 2)
            writer.write(1 if op.locked else 0, 1)
            writer.write(1 if op.shadow else 0, 1)
        if op.target is not None:
            writer.write(self._name(op.target.name), 16)
        if op.opcode is OpCode.CALL:
            writer.write(self._name(op.callee), 16)

    def encode_instruction(self, instruction):
        writer = _BitWriter()
        mask = 0
        for position, unit in enumerate(ALL_UNITS):
            if unit in instruction.slots:
                mask |= 1 << position
        writer.write(mask, 9)
        writer.write(len(instruction.loop_ends), 2)
        for loop_id in instruction.loop_ends:
            writer.write(self._name(loop_id), 16)
        for unit in ALL_UNITS:
            if unit in instruction.slots:
                self.encode_operation(writer, instruction.slots[unit])
        return writer.bits

    def encode_program(self, program):
        bits = [
            self.encode_instruction(instruction)
            for instruction in program.instructions
        ]
        return EncodedProgram(bits, self.pool, self.symbols, self.names)


class Decoder:
    """Decodes what :class:`Encoder` produced (for round-trip checks)."""

    def __init__(self, encoded):
        self.encoded = encoded

    def _read_source(self, reader):
        kind = reader.read(2)
        if kind == _KIND_REG:
            rclass = _CLASSES[reader.read(2)]
            number = reader.read(5)
            from repro.compiler.regalloc import phys

            return phys(rclass, number)
        if kind == _KIND_IMM:
            return Immediate(reader.read(_IMM_BITS) + _IMM_MIN)
        if kind == _KIND_POOL:
            value = self.encoded.pool[reader.read(16)]
            return Immediate(value)
        raise ValueError("bad source kind %d" % kind)

    def decode_instruction(self, bits):
        reader = _BitReader(bits)
        mask = reader.read(9)
        instruction = LongInstruction()
        loop_end_count = reader.read(2)
        for _ in range(loop_end_count):
            instruction.loop_ends.append(self.encoded.names[reader.read(16)])
        for position, unit in enumerate(ALL_UNITS):
            if not mask & (1 << position):
                continue
            opcode = _OPCODES[reader.read(7)]
            dest = None
            if reader.read(1):
                rclass = _CLASSES[reader.read(2)]
                number = reader.read(5)
                from repro.compiler.regalloc import phys

                dest = phys(rclass, number)
            source_count = reader.read(2)
            sources = tuple(
                self._read_source(reader) for _ in range(source_count)
            )
            symbol = None
            bank = None
            locked = False
            shadow = False
            if opcode in (OpCode.LOAD, OpCode.STORE):
                symbol = self.encoded.symbols[reader.read(12)]
                bank = _BANKS[reader.read(2)]
                locked = bool(reader.read(1))
                shadow = bool(reader.read(1))
            target = None
            needs_target = opcode in (
                OpCode.BR,
                OpCode.BRT,
                OpCode.BRF,
                OpCode.LOOP_BEGIN,
                OpCode.LOOP_END,
            )
            if needs_target:
                target = Label(self.encoded.names[reader.read(16)])
            callee = None
            if opcode is OpCode.CALL:
                callee = self.encoded.names[reader.read(16)]
            op = Operation(
                opcode,
                dest=dest,
                sources=sources,
                symbol=symbol,
                target=target,
                callee=callee,
                bank=bank,
                locked=locked,
                shadow=shadow,
            )
            instruction.add(unit, op)
        return instruction


def encode_program(program):
    """Pack *program* to bits; returns an :class:`EncodedProgram`."""
    return Encoder().encode_program(program)


def packed_size_words(program, word_bits=32):
    """Instruction-memory size in *packed* words (code + constant pool).

    The paper's cost model charges one word per long instruction; this
    is the tighter alternative a production encoder would reach.
    """
    return encode_program(program).words(word_bits)
