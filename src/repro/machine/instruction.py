"""Long (VLIW) instructions and assembled machine programs."""

from repro.machine.resources import ALL_UNITS


class LongInstruction:
    """One VLIW instruction: at most one operation per functional unit.

    ``loop_ends`` lists the hardware-loop identifiers whose final body
    instruction this is; the simulator performs the zero-overhead back-edge
    test after executing such an instruction.
    """

    __slots__ = ("slots", "loop_ends", "block_label")

    def __init__(self, block_label=None):
        self.slots = {}
        self.loop_ends = []
        self.block_label = block_label

    def add(self, unit, op):
        if unit in self.slots:
            raise ValueError("unit %s already occupied" % unit.name)
        self.slots[unit] = op

    def unit_free(self, unit):
        return unit not in self.slots

    @property
    def ops(self):
        return list(self.slots.values())

    def __len__(self):
        return len(self.slots)

    def __iter__(self):
        return iter(self.slots.items())

    def __repr__(self):
        parts = []
        for unit in ALL_UNITS:
            if unit in self.slots:
                from repro.ir.printer import format_operation

                parts.append("%s: %s" % (unit.name, format_operation(self.slots[unit])))
        if self.loop_ends:
            parts.append("loop_end(%s)" % ",".join(self.loop_ends))
        return "{ " + " | ".join(parts) + " }"


class MachineProgram:
    """A fully scheduled program, ready for the instruction-set simulator.

    Attributes
    ----------
    instructions:
        Flat list of :class:`LongInstruction`, all functions concatenated.
    function_entries:
        Function name -> index of its first instruction.
    labels:
        Block label -> instruction index of the block's first instruction.
    loops:
        Hardware-loop id -> ``(start_index, end_index)``.
    frames:
        Function name -> its :class:`~repro.compiler.frames.FrameLayout`.
    layout:
        The :class:`~repro.compiler.layout.DataLayout` of global symbols.
    """

    def __init__(self):
        self.instructions = []
        self.function_entries = {}
        self.labels = {}
        self.loops = {}
        self.frames = {}
        self.layout = None
        self.module = None

    @property
    def size(self):
        """Static code size in instruction words (1 word per instruction)."""
        return len(self.instructions)

    def dump(self):
        """Multi-line disassembly listing."""
        index_to_label = {}
        for label, index in self.labels.items():
            index_to_label.setdefault(index, []).append(label)
        lines = []
        for i, instr in enumerate(self.instructions):
            for label in index_to_label.get(i, []):
                lines.append("%s:" % label)
            lines.append("  %4d  %r" % (i, instr))
        return "\n".join(lines)

    def __len__(self):
        return len(self.instructions)
