"""Machine model of the VLIW DSP architecture (paper Figure 2).

Nine pipelined functional units, each with single-cycle latency:

* ``PCU`` — program control unit (branches, calls, hardware loops);
* ``MU0``/``MU1`` — memory units; MU0 accesses the X data-memory bank,
  MU1 accesses the Y bank, both single-ported;
* ``AU0``/``AU1`` — address units;
* ``DU0``/``DU1`` — integer data units;
* ``FPU0``/``FPU1`` — floating-point units.

A :class:`~repro.machine.instruction.LongInstruction` packs at most one
operation per unit.
"""

from repro.machine.resources import (
    ALL_UNITS,
    MEMORY_UNITS,
    FunctionalUnit,
    bank_for_unit,
    unit_for_bank,
    units_for_class,
)
from repro.machine.instruction import LongInstruction, MachineProgram
from repro.machine.asm import format_asm
from repro.machine.encoding import Decoder, EncodedProgram, Encoder, encode_program, packed_size_words

__all__ = [
    "ALL_UNITS",
    "Decoder",
    "EncodedProgram",
    "Encoder",
    "FunctionalUnit",
    "LongInstruction",
    "MEMORY_UNITS",
    "MachineProgram",
    "bank_for_unit",
    "encode_program",
    "format_asm",
    "packed_size_words",
    "unit_for_bank",
    "units_for_class",
]
