"""Functional-unit inventory and bank wiring of the model architecture."""

import enum

from repro.ir.operations import UnitClass
from repro.ir.symbols import MemoryBank


class FunctionalUnit(enum.Enum):
    """One of the nine functional units of paper Figure 2."""

    PCU = "PCU"
    MU0 = "MU0"
    MU1 = "MU1"
    AU0 = "AU0"
    AU1 = "AU1"
    DU0 = "DU0"
    DU1 = "DU1"
    FPU0 = "FPU0"
    FPU1 = "FPU1"

    def __repr__(self):
        return "FU.%s" % self.name


ALL_UNITS = tuple(FunctionalUnit)

_UNITS_BY_CLASS = {
    UnitClass.PCU: (FunctionalUnit.PCU,),
    UnitClass.MU: (FunctionalUnit.MU0, FunctionalUnit.MU1),
    UnitClass.AU: (FunctionalUnit.AU0, FunctionalUnit.AU1),
    UnitClass.DU: (FunctionalUnit.DU0, FunctionalUnit.DU1),
    UnitClass.FPU: (FunctionalUnit.FPU0, FunctionalUnit.FPU1),
}

MEMORY_UNITS = _UNITS_BY_CLASS[UnitClass.MU]

#: Bank each memory unit is wired to: MU0 accesses X, MU1 accesses Y.
_BANK_BY_UNIT = {
    FunctionalUnit.MU0: MemoryBank.X,
    FunctionalUnit.MU1: MemoryBank.Y,
}

_UNIT_BY_BANK = {
    MemoryBank.X: FunctionalUnit.MU0,
    MemoryBank.Y: FunctionalUnit.MU1,
}


def units_for_class(unit_class):
    """The functional-unit instances implementing *unit_class*."""
    return _UNITS_BY_CLASS[unit_class]


def bank_for_unit(unit):
    """The data bank a memory unit is wired to."""
    return _BANK_BY_UNIT[unit]


def unit_for_bank(bank):
    """The memory unit wired to *bank* (X or Y only)."""
    return _UNIT_BY_BANK[bank]
