"""DSP-style assembly listing of a compiled program.

Renders each long instruction in the two-column style of DSP56001
assembly (paper Figure 1b): the arithmetic/control fields first, then
the X-memory and Y-memory parallel-move fields —

    fmac f1,f2,f3        x:(a1+1),f3      y:(a1+1),f2   ; loop L0 end

which makes the dual-bank parallelism visually obvious in a way the
slot-by-slot dump does not.
"""

from repro.ir.operations import OpCode
from repro.ir.values import Immediate
from repro.machine.resources import FunctionalUnit


def _reg(reg):
    return "%s%d" % (reg.rclass.value, reg.physical if reg.physical is not None else reg.index)


def _operand(operand):
    if isinstance(operand, Immediate):
        return "#%s" % operand.value
    return _reg(operand)


def _address(op):
    base = _operand(op.index_operand())
    offset = op.offset_operand()
    if offset is not None:
        return "(%s+%s)" % (base, _operand(offset))
    return "(%s)" % base


def _move_field(op, bank_letter):
    address = "%s:%s %s" % (bank_letter, _address(op), op.symbol.name)
    if op.is_load:
        text = "%s,%s" % (address, _reg(op.dest))
    else:
        text = "%s,%s" % (_reg(op.sources[0]), address)
    if op.locked:
        text += " [l]"
    return text


def _compute_field(op):
    if op.opcode is OpCode.CALL:
        return "jsr %s" % op.callee
    if op.target is not None and op.opcode in (OpCode.BR, OpCode.BRT, OpCode.BRF):
        condition = "" if op.opcode is OpCode.BR else " %s," % _operand(op.sources[0])
        return "%s%s %s" % (op.opcode.value, condition, op.target.name)
    if op.opcode is OpCode.LOOP_BEGIN:
        return "do %s,%s" % (_operand(op.sources[0]), op.target.name)
    parts = [op.opcode.value]
    operands = []
    if op.dest is not None:
        operands.append(_reg(op.dest))
    operands.extend(_operand(s) for s in op.sources)
    if operands:
        parts.append(",".join(operands))
    return " ".join(parts)


def format_data_directives(program):
    """Memory-bank assembly directives for the program's globals.

    Mirrors how the paper's compiler emits globals: each symbol is
    placed in its bank with an ``org``-style directive (paper Section
    3.1: "assigning global variables ... requires only minor program
    changes involving memory-bank assembly directives").  Duplicated
    symbols appear in both sections at the same address.
    """
    layout = program.layout
    sections = {"x": [], "y": []}
    for symbol in program.module.globals:
        bank, address = layout.address_of(symbol.name)
        entry = (address, symbol)
        if bank.value in ("X", "XY"):
            sections["x"].append(entry)
        if bank.value in ("Y", "XY"):
            sections["y"].append(entry)
    lines = []
    for letter in ("x", "y"):
        lines.append("        org     %s:0" % letter)
        for address, symbol in sorted(sections[letter], key=lambda e: e[0]):
            lines.append(
                "%-15s ds      %-6d ; %s:%d"
                % (symbol.name, symbol.size, letter, address)
            )
    return "\n".join(lines)


def format_asm(program, data=True):
    """Two-column assembly listing of the whole program."""
    index_to_labels = {}
    for label, index in program.labels.items():
        index_to_labels.setdefault(index, []).append(label)
    lines = []
    if data and program.layout is not None:
        lines.append(format_data_directives(program))
        lines.append("")
    for index, instruction in enumerate(program.instructions):
        for label in sorted(index_to_labels.get(index, [])):
            lines.append("%s:" % label)
        compute = []
        x_move = ""
        y_move = ""
        for unit, op in instruction:
            if unit is FunctionalUnit.MU0:
                x_move = _move_field(op, "x")
            elif unit is FunctionalUnit.MU1:
                y_move = _move_field(op, "y")
            else:
                compute.append(_compute_field(op))
        comment = ""
        if instruction.loop_ends:
            comment = "  ; end %s" % ",".join(instruction.loop_ends)
        lines.append(
            "  %-40s %-26s %-26s%s"
            % ("; ".join(compute) if compute else "nop", x_move, y_move, comment)
        )
    return "\n".join(line.rstrip() for line in lines)
