"""The paper's first-order cost model:  Cost = X + Y + 2·S + I.

``X`` and ``Y`` are the static data sizes (in words) of the two banks,
``S`` the stack size — multiplied by two because both banks carry a stack
— and ``I`` the instruction-memory size (one word per long instruction;
the paper assumes instructions and data are the same size and notes that
data costs dominate).

From per-configuration costs and cycle counts the model derives the
paper's Table 3 metrics:

* **PG** — performance gain, ``baseline_cycles / cycles``;
* **CI** — cost increase, ``cost / baseline_cost``;
* **PCR** — performance/cost ratio, ``PG / CI``; above 1 means the
  speedup outweighs the extra memory.
"""


class CostReport:
    """Memory cost breakdown for one compiled-and-simulated program."""

    def __init__(self, data_x, data_y, stack, instructions):
        self.data_x = data_x
        self.data_y = data_y
        self.stack = stack
        self.instructions = instructions

    @property
    def total(self):
        return self.data_x + self.data_y + 2 * self.stack + self.instructions

    def __repr__(self):
        return "<CostReport X=%d Y=%d S=%d I=%d total=%d>" % (
            self.data_x,
            self.data_y,
            self.stack,
            self.instructions,
            self.total,
        )


class CostModel:
    """Extracts a :class:`CostReport` from a compile + simulate pair.

    With ``packed_code=True``, instruction memory is charged by the
    bit-packed encoding (:mod:`repro.machine.encoding`) instead of the
    paper's one-word-per-long-instruction simplification.
    """

    def __init__(self, packed_code=False, word_bits=32):
        self.packed_code = packed_code
        self.word_bits = word_bits

    def measure(self, compile_result, sim_result):
        layout = compile_result.program.layout
        stack = max(sim_result.stack_peak_x, sim_result.stack_peak_y)
        if self.packed_code:
            from repro.machine.encoding import packed_size_words

            instructions = packed_size_words(
                compile_result.program, self.word_bits
            )
        else:
            instructions = compile_result.program.size
        return CostReport(
            data_x=layout.data_size_x,
            data_y=layout.data_size_y,
            stack=stack,
            instructions=instructions,
        )


class TradeoffRow:
    """One (application, configuration) cell of paper Table 3."""

    def __init__(self, name, strategy, pg, ci):
        self.name = name
        self.strategy = strategy
        #: performance gain (1.00 = no change; 1.34 = 34% faster)
        self.pg = pg
        #: cost increase (1.00 = no change)
        self.ci = ci

    @property
    def pcr(self):
        """Performance/cost ratio; > 1 means worthwhile (paper Sec 4.2)."""
        return self.pg / self.ci

    def __repr__(self):
        return "<%s/%s PG=%.2f CI=%.2f PCR=%.2f>" % (
            self.name,
            self.strategy,
            self.pg,
            self.ci,
            self.pcr,
        )


def tradeoff_row(name, strategy, baseline_cycles, cycles, baseline_cost, cost):
    """Build a :class:`TradeoffRow` from raw measurements."""
    if cycles <= 0 or baseline_cost <= 0:
        raise ValueError("measurements must be positive")
    return TradeoffRow(
        name,
        strategy,
        pg=baseline_cycles / cycles,
        ci=cost / baseline_cost,
    )
