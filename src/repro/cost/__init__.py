"""First-order memory cost model of paper Section 4.2."""

from repro.cost.model import CostModel, CostReport, TradeoffRow, tradeoff_row

__all__ = ["CostModel", "CostReport", "TradeoffRow", "tradeoff_row"]
