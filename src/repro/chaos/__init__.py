"""Deterministic chaos testing for the serve path.

:mod:`repro.chaos.plan` draws seeded, JSON-serializable
:class:`~repro.chaos.plan.ChaosPlan` campaigns (kill/restart cycles,
store sabotage, protocol abuse); :mod:`repro.chaos.harness` drives a
live ``repro serve`` subprocess through one and asserts the
crash-safety invariants — no accepted job lost, no job executed twice,
replays bit-identical to direct execution, recovery inside its budget.
``repro chaos`` is the CLI entry point; ``benchmarks/bench_chaos.py``
freezes a campaign's verdict into ``BENCH_chaos.json``.
"""

from repro.chaos.harness import render_chaos, run_chaos
from repro.chaos.plan import ChaosPlan, generate_plan

__all__ = ["ChaosPlan", "generate_plan", "run_chaos", "render_chaos"]
