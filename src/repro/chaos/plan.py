"""Seeded, serializable chaos plans for the serve path.

A :class:`ChaosPlan` is to the chaos harness what a
:class:`~repro.faults.plan.FaultPlan` is to the fault injector: a
small, JSON-stable value that *deterministically* describes one chaos
campaign against a live ``repro serve`` process.  Same plan + same
code ⇒ the same submissions, the same kill points, the same induced
corruptions — which is what lets ``BENCH_chaos.json`` freeze the
crash-safety invariants (no accepted job lost, no job executed twice,
replays bit-identical) as a regression gate instead of a flaky soak.

A plan is a list of **cycles**.  Each cycle names the jobs submitted
while the service is up and the chaos events applied around them:

``["kill"]``
    SIGKILL the service process mid-batch — after every submission in
    the cycle has been write-ahead journaled and acknowledged
    ``accepted``, with terminals still in flight.  The harness
    restarts the service at the top of the next cycle and measures
    recovery (re-execution of unfinished jobs from the journal).
``["corrupt", pick]``
    While the service is down, flip one byte inside artifact-store
    object number ``pick`` (modulo the store's population, sorted
    order) — exercising the store's verify-on-read path under
    restart.
``["truncate", pick]``
    Same selection, but truncate the object file to half its length —
    a torn write at the filesystem level.
``["oversize"]``
    Open a throwaway connection and send a single line just past the
    protocol's 4 MiB cap; the service must answer with a typed
    ``protocol`` error and survive.
``["stall", nbytes]``
    Open a connection, send ``nbytes`` of a syntactically valid prefix
    of a job, and never finish the line — the stalled half-submission
    is abandoned (the socket dies with the cycle's kill), and the
    service must treat the fragment as a truncated line, not a crash.
``["workerkill"]``
    Best-effort SIGKILL of one of the service's supervised worker
    processes mid-cycle (a no-op when the service runs serial);
    supervision's retry budget must absorb it.

Jobs are stored inline (plain validated-job dicts with stable
``chaos-<seed>-<cycle>-<i>`` ids) so a plan fully describes its run,
the way a fuzz :class:`~repro.fuzz.generator.Recipe` carries its
statements.
"""

import json
import random

#: bump when the serialized format changes incompatibly
VERSION = 1

#: event kinds a plan may contain
EVENT_KINDS = ("kill", "corrupt", "truncate", "oversize", "stall",
               "workerkill")

#: the workload/strategy rotation chaos jobs draw from — small enough
#: to compile fast, varied enough to populate several compile groups
WORKLOADS = ("fir_32_1", "iir_1_1", "mult_4_4")
STRATEGIES = ("CB", "CB_DUP", "SINGLE_BANK")


class ChaosPlan:
    """One deterministic chaos campaign: a seed and a list of cycles,
    each ``{"jobs": [...], "events": [...]}`` (module docstring has the
    event grammar)."""

    def __init__(self, seed, cycles=None):
        self.seed = seed
        self.cycles = [
            {
                "jobs": [dict(job) for job in cycle.get("jobs", [])],
                "events": [list(event) for event in cycle.get("events", [])],
            }
            for cycle in (cycles or [])
        ]

    # -- serialization (mirrors faults.plan.FaultPlan) -----------------
    def to_dict(self):
        """Plain-data form (JSON-stable)."""
        return {
            "version": VERSION,
            "seed": self.seed,
            "cycles": [
                {
                    "jobs": [dict(job) for job in cycle["jobs"]],
                    "events": [list(event) for event in cycle["events"]],
                }
                for cycle in self.cycles
            ],
        }

    @classmethod
    def from_dict(cls, data):
        """Rebuild a plan from :meth:`to_dict` output."""
        if data.get("version") != VERSION:
            raise ValueError(
                "chaos plan version %r != supported %d"
                % (data.get("version"), VERSION)
            )
        return cls(seed=data["seed"], cycles=data["cycles"])

    def to_json(self):
        """Serialize to a JSON string (sorted keys, so equal plans
        serialize identically)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text):
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(text))

    def jobs(self):
        """Every job in the plan, cycle order then submission order."""
        return [job for cycle in self.cycles for job in cycle["jobs"]]

    def __eq__(self, other):
        if not isinstance(other, ChaosPlan):
            return NotImplemented
        return self.to_dict() == other.to_dict()

    def __hash__(self):
        return hash(self.to_json())

    def __repr__(self):
        return "<ChaosPlan seed=%r cycles=%d jobs=%d kills=%d>" % (
            self.seed,
            len(self.cycles),
            len(self.jobs()),
            sum(
                1
                for cycle in self.cycles
                for event in cycle["events"]
                if event[0] == "kill"
            ),
        )


def _draw_job(rng, seed, cycle, index):
    """One deterministic job for slot (*cycle*, *index*)."""
    job = {"kind": "run", "id": "chaos-%d-%d-%d" % (seed, cycle, index)}
    roll = rng.random()
    if roll < 0.15:
        # a program-error job: BadWrite faults its own lane, is
        # journaled as a terminal error, and must deduplicate on
        # resubmission exactly like a success
        job["workload"] = rng.choice(WORKLOADS)
        job["writes"] = {"x": [0.0] * 512}
    elif roll < 0.30:
        # a seeded generator recipe: a distinct compile group whose
        # program the artifact store has never seen
        job = {
            "kind": "recipe",
            "id": job["id"],
            "recipe": {"seed": rng.randrange(1, 64)},
            "strategy": rng.choice(STRATEGIES),
        }
    else:
        job["workload"] = rng.choice(WORKLOADS)
        job["strategy"] = rng.choice(STRATEGIES)
        if rng.random() < 0.25:
            job["reads"] = ["y"] if job["workload"] == "fir_32_1" else []
    return job


def generate_plan(seed, cycles=3, jobs_per_cycle=4):
    """Draw a :class:`ChaosPlan` from *seed*.

    Every cycle ends in a ``kill`` (the crash/restart loop is the
    point); auxiliary events — store corruption, oversized and stalled
    submissions, worker kills — are drawn per cycle.  Deterministic:
    same arguments ⇒ equal plans, the property ``BENCH_chaos.json``
    and the replay tests lean on.
    """
    rng = random.Random((seed & 0xFFFFFFFF) ^ 0xC4A0_5EED)
    drawn = []
    for cycle in range(max(1, cycles)):
        jobs = [
            _draw_job(rng, seed, cycle, index)
            for index in range(max(1, jobs_per_cycle))
        ]
        events = []
        if rng.random() < 0.5:
            events.append(["oversize"])
        if rng.random() < 0.5:
            events.append(["stall", 16 + rng.randrange(64)])
        if rng.random() < 0.4:
            events.append(["workerkill"])
        events.append(["kill"])
        # store sabotage applies while the service is down, i.e. after
        # this cycle's kill and before the next cycle's restart
        if cycle and rng.random() < 0.6:
            events.append(["corrupt", rng.randrange(1 << 16)])
        if cycle and rng.random() < 0.4:
            events.append(["truncate", rng.randrange(1 << 16)])
        drawn.append({"jobs": jobs, "events": events})
    return ChaosPlan(seed=seed, cycles=drawn)
