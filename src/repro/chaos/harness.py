"""The chaos harness: drive a live ``repro serve`` process through a
seeded :class:`~repro.chaos.plan.ChaosPlan` and check the crash-safety
invariants.

One :func:`run_chaos` call is one campaign:

1. For each plan cycle: start the service (``--journal``/
   ``--cache-dir``), wait for **recovery** — every job accepted in any
   earlier cycle must land a completed journal record *without being
   resubmitted* (the service re-executes unfinished work from the
   write-ahead log on its own); resubmit all prior jobs and require
   each replayed terminal to match its reference; fire the cycle's
   auxiliary events (oversized lines, stalled half-submissions,
   best-effort worker kills); submit the cycle's fresh jobs; and, on
   the plan's ``kill`` event, SIGKILL the service the moment every
   submission is acknowledged — terminals still in flight.  Store
   sabotage events (``corrupt``/``truncate``) run while the service is
   down.
2. A final **settle** pass restarts the service (with
   ``--scrub-cache``, so induced store corruption is purged up front),
   waits for full recovery, resubmits every job in the plan, and
   checks every terminal against the references one more time.

Invariants asserted (the report's ``invariants`` block):

* **no accepted job lost** — every job ever acknowledged ``accepted``
  has a completed journal record after recovery, with no client help;
* **no job executed twice** — the raw journal holds at most one
  completed record per job key across every kill/restart cycle
  (resubmissions deduplicate, racing resubmissions merge);
* **bit-identical replays** — every terminal (fresh, recovered, or
  replayed) matches a direct :func:`~repro.serve.jobs.execute_job`
  reference: same digest, cycles, and outputs for results, same
  kind/category for errors;
* **bounded recovery** — the worst observed restart-to-full-recovery
  time stays under ``recovery_budget_s``.

References are computed in-process against a separate cache directory,
so the comparison never shares state with the service under test.
"""

import json
import os
import re
import signal
import socket
import subprocess
import sys
import time
from pathlib import Path

from repro.evaluation.parallel import Journal
from repro.serve import protocol
from repro.serve.client import ServeClient
from repro.serve.jobs import execute_job
from repro.serve.protocol import validate_job
from repro.serve.service import job_key

#: how long to wait for the service banner before declaring a failed start
_START_TIMEOUT_S = 60.0


# ---------------------------------------------------------------------
# Service process management
# ---------------------------------------------------------------------
def _service_env():
    """The child's environment: the running interpreter's ``repro``
    package made importable, whatever else the caller had."""
    import repro

    src_root = Path(repro.__file__).resolve().parents[1]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, [str(src_root), env.get("PYTHONPATH")])
    )
    return env


def _start_service(cache_dir, journal_path, workers=None, scrub=False,
                   python=None):
    """Launch ``repro serve`` as a subprocess; returns
    ``(process, host, port)`` once the banner announces the bound
    address."""
    command = [
        python or sys.executable, "-u", "-m", "repro", "serve",
        "--port", "0",
        "--cache-dir", str(cache_dir),
        "--journal", str(journal_path),
    ]
    if workers:
        command += ["--workers", str(workers)]
    if scrub:
        command += ["--scrub-cache"]
    process = subprocess.Popen(
        command, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=_service_env(),
    )
    preamble = []
    deadline = time.monotonic() + _START_TIMEOUT_S
    while time.monotonic() < deadline:
        line = process.stdout.readline()
        if not line:
            break
        preamble.append(line.strip())
        match = re.search(r"serving on ([\d.]+):(\d+)", line)
        if match:
            return process, match.group(1), int(match.group(2))
    process.kill()
    process.wait()
    raise RuntimeError(
        "service failed to start; output so far: %r" % (preamble,)
    )


def _kill_worker(service_pid):
    """Best-effort SIGKILL of one supervised worker child of the
    service (no-op when the service runs serial or the child already
    exited); returns the killed pid or None."""
    children_path = "/proc/%d/task/%d/children" % (service_pid, service_pid)
    try:
        with open(children_path) as handle:
            children = [int(pid) for pid in handle.read().split()]
    except (OSError, ValueError):
        return None
    for pid in children:
        try:
            os.kill(pid, signal.SIGKILL)
            return pid
        except OSError:
            continue
    return None


# ---------------------------------------------------------------------
# Protocol probes
# ---------------------------------------------------------------------
def _oversize_probe(host, port):
    """Send one line just past the 4 MiB cap; returns the service's
    response event (a typed ``protocol`` error if the service held)."""
    with socket.create_connection((host, port), timeout=30.0) as sock:
        payload = b" " * (protocol.MAX_LINE_BYTES + 64) + b"\n"
        sock.sendall(payload)
        line = sock.makefile("rb").readline()
    if not line:
        return None
    try:
        return json.loads(line)
    except ValueError:
        return None


def _stall_probe(host, port, nbytes):
    """Open a connection and send *nbytes* of a job line that never
    finishes — a stalled client.  The socket is returned open; the
    caller abandons it with the cycle (the service must treat the
    fragment as a truncated line, never as a crash)."""
    sock = socket.create_connection((host, port), timeout=30.0)
    fragment = (b'{"kind": "run", "workload": "' + b"x" * nbytes)
    sock.sendall(fragment[: max(8, nbytes)])
    return sock


# ---------------------------------------------------------------------
# Submission legs
# ---------------------------------------------------------------------
def _submit_until_accepted(host, port, jobs):
    """Pipeline *jobs* and read only as far as every submission's
    acknowledgement — the pre-kill leg.  Returns ``(client, accepted
    ids, early terminal events)`` with the connection left open so the
    kill lands mid-conversation."""
    client = ServeClient(host, port)
    ids = [job["id"] for job in jobs]
    pending = set(ids)
    accepted = []
    terminals = {}
    for job in jobs:
        client.send(dict(job))
    while pending:
        event = client.read_event()
        if event is None:
            break
        job_id = event.get("id")
        if job_id not in set(ids):
            continue
        kind = event.get("event")
        if kind == "accepted":
            accepted.append(job_id)
            pending.discard(job_id)
        elif kind == "rejected":
            terminals[job_id] = event
            pending.discard(job_id)
        else:
            terminals[job_id] = event
    return client, accepted, terminals


def _await_journal_coverage(journal_path, keys, budget_s):
    """Poll the journal (fresh parse each time — it is flushed per
    record) until every key in *keys* has a completed record; returns
    ``(covered, elapsed_s, completed)``."""
    keys = set(keys)
    started = time.monotonic()
    while True:
        completed = (
            Journal(str(journal_path)).completed
            if os.path.exists(journal_path) else {}
        )
        if keys <= set(completed):
            return True, time.monotonic() - started, completed
        if time.monotonic() - started > budget_s:
            return False, time.monotonic() - started, completed
        time.sleep(0.05)


# ---------------------------------------------------------------------
# Store sabotage
# ---------------------------------------------------------------------
def _store_objects(cache_dir):
    root = Path(cache_dir) / "objects"
    if not root.exists():
        return []
    return sorted(path for path in root.rglob("*") if path.is_file())


def _corrupt_object(cache_dir, pick):
    """Flip one byte in the middle of store object ``pick % count``;
    returns the victim path or None when the store is empty."""
    objects = _store_objects(cache_dir)
    if not objects:
        return None
    victim = objects[pick % len(objects)]
    data = bytearray(victim.read_bytes())
    if not data:
        return None
    data[len(data) // 2] ^= 0xFF
    victim.write_bytes(bytes(data))
    return victim


def _truncate_object(cache_dir, pick):
    """Truncate store object ``pick % count`` to half its length — a
    torn write; returns the victim path or None."""
    objects = _store_objects(cache_dir)
    if not objects:
        return None
    victim = objects[pick % len(objects)]
    data = victim.read_bytes()
    victim.write_bytes(data[: len(data) // 2])
    return victim


# ---------------------------------------------------------------------
# Reference comparison
# ---------------------------------------------------------------------
def _reference(job, cache_dir):
    """The direct-execution result this job's terminal must match."""
    return execute_job(validate_job(dict(job)), cache_dir=cache_dir)


def _matches(reference, event):
    """Does a service terminal *event* agree with its *reference*?"""
    if event is None:
        return False
    if reference["ok"]:
        return (
            event.get("event") == "result"
            and event.get("digest") == reference["digest"]
            and event.get("cycles") == reference["cycles"]
            and event.get("outputs") == reference["outputs"]
        )
    fault = reference["fault"]
    return (
        event.get("event") == "error"
        and event.get("kind") == fault["kind"]
        and event.get("category") == fault["category"]
    )


def _completed_counts(journal_path, keys):
    """Completed-record count per key from the *raw* journal lines —
    the duplicate-execution ledger (the parsed ``Journal.completed``
    dict collapses duplicates, so the invariant reads the file)."""
    counts = dict.fromkeys(keys, 0)
    if not os.path.exists(journal_path):
        return counts
    with open(journal_path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if not isinstance(entry, dict) or entry.get("started"):
                continue
            key = entry.get("key")
            if key in counts:
                counts[key] += 1
    return counts


# ---------------------------------------------------------------------
# The campaign
# ---------------------------------------------------------------------
def run_chaos(plan, work_dir, workers=None, recovery_budget_s=30.0,
              log=None, python=None):
    """Run one chaos campaign (module docstring) and return its report
    dict — JSON-able throughout, ``report["ok"]`` is the verdict."""
    say = log if log is not None else (lambda _message: None)
    work = Path(work_dir)
    work.mkdir(parents=True, exist_ok=True)
    journal_path = work / "journal.jsonl"
    cache_dir = work / "cache"
    reference_dir = work / "reference-cache"

    all_jobs = plan.jobs()
    keys = {
        job["id"]: job_key(validate_job(dict(job))) for job in all_jobs
    }
    say("chaos: computing %d reference results" % len(all_jobs))
    references = {
        job["id"]: _reference(job, str(reference_dir)) for job in all_jobs
    }

    accepted_ever = {}  # id -> journal key, in acceptance order
    lost = set()
    mismatched = set()
    cycles_report = []
    recovery_worst = 0.0
    kills = 0
    protocol_errors_survived = 0
    deduped_replays = 0
    corruptions = []

    def replay(host, port, jobs):
        """Resubmit *jobs* and check every terminal against its
        reference; returns the connection's final stats snapshot."""
        nonlocal deduped_replays
        with ServeClient(host, port) as client:
            events = client.run_jobs([dict(job) for job in jobs])
            stats = client.stats()
        for job, event in zip(jobs, events):
            if not _matches(references[job["id"]], event):
                mismatched.add(job["id"])
        deduped_replays += stats.get("serve.deduped", 0)
        return stats

    for index, cycle in enumerate(plan.cycles):
        events = cycle["events"]
        process, host, port = _start_service(
            cache_dir, journal_path, workers=workers, python=python,
        )
        say("chaos: cycle %d up on %s:%d" % (index, host, port))
        # -- recovery: earlier accepted jobs must complete unprompted --
        recovery_s = 0.0
        if accepted_ever:
            covered, recovery_s, completed = _await_journal_coverage(
                journal_path, accepted_ever.values(), recovery_budget_s,
            )
            recovery_worst = max(recovery_worst, recovery_s)
            if not covered:
                for job_id, key in accepted_ever.items():
                    if key not in completed:
                        lost.add(job_id)
        # -- idempotent replay of everything submitted so far ----------
        prior = [
            job
            for earlier in plan.cycles[:index]
            for job in earlier["jobs"]
        ]
        if prior:
            replay(host, port, prior)
        # -- auxiliary chaos while the service is up -------------------
        stalled = []
        for event in events:
            if event[0] == "oversize":
                response = _oversize_probe(host, port)
                if (isinstance(response, dict)
                        and response.get("category") == "protocol"):
                    protocol_errors_survived += 1
            elif event[0] == "stall":
                stalled.append(_stall_probe(host, port, event[1]))
        # -- this cycle's fresh submissions ----------------------------
        client, accepted, _early = _submit_until_accepted(
            host, port, cycle["jobs"]
        )
        for job_id in accepted:
            accepted_ever[job_id] = keys[job_id]
        if any(event[0] == "workerkill" for event in events):
            _kill_worker(process.pid)
        # -- the kill --------------------------------------------------
        if any(event[0] == "kill" for event in events):
            kills += 1
            process.kill()
            process.wait()
            say("chaos: cycle %d killed with %d submission(s) accepted"
                % (index, len(accepted)))
        else:
            # a kill-free cycle drains normally before shutdown
            replay(host, port, cycle["jobs"])
            process.terminate()
            process.wait()
        client.close()
        for sock in stalled:
            try:
                sock.close()
            except OSError:
                pass
        # -- store sabotage while the service is down ------------------
        for event in events:
            if event[0] == "corrupt":
                victim = _corrupt_object(cache_dir, event[1])
            elif event[0] == "truncate":
                victim = _truncate_object(cache_dir, event[1])
            else:
                continue
            if victim is not None:
                corruptions.append(
                    {"kind": event[0], "object": victim.name}
                )
        cycles_report.append({
            "jobs": len(cycle["jobs"]),
            "accepted": len(accepted),
            "recovery_s": round(recovery_s, 3),
            "events": [list(event) for event in events],
        })

    # -- settle: recover everything, then replay the whole plan --------
    process, host, port = _start_service(
        cache_dir, journal_path, workers=workers, scrub=True, python=python,
    )
    say("chaos: settle pass up on %s:%d" % (host, port))
    covered, settle_s, completed = _await_journal_coverage(
        journal_path, accepted_ever.values(), recovery_budget_s,
    )
    recovery_worst = max(recovery_worst, settle_s)
    if not covered:
        for job_id, key in accepted_ever.items():
            if key not in completed:
                lost.add(job_id)
    final_stats = replay(host, port, all_jobs)
    process.terminate()
    process.wait()

    counts = _completed_counts(journal_path, set(accepted_ever.values()))
    duplicates = sum(count - 1 for count in counts.values() if count > 1)

    invariants = {
        "accepted": len(accepted_ever),
        "lost": len(lost),
        "lost_ids": sorted(lost),
        "duplicate_executions": duplicates,
        "replay_mismatches": len(mismatched),
        "mismatched_ids": sorted(mismatched),
        "kills": kills,
        "recovery_worst_s": round(recovery_worst, 3),
        "recovery_budget_s": recovery_budget_s,
        "protocol_errors_survived": protocol_errors_survived,
        "deduped_replays": deduped_replays,
        "store_corruptions": len(corruptions),
    }
    ok = (
        not lost
        and duplicates == 0
        and not mismatched
        and recovery_worst <= recovery_budget_s
    )
    return {
        "plan": plan.to_dict(),
        "workers": workers,
        "cycles": cycles_report,
        "corruptions": corruptions,
        "final_counters": {
            key: value
            for key, value in sorted(final_stats.items())
            if key.startswith("serve.") or key in
            ("queue_depth", "inflight", "breakers_open")
        },
        "invariants": invariants,
        "ok": ok,
    }


def render_chaos(report):
    """The campaign verdict as human-readable lines (the CLI's
    output)."""
    invariants = report["invariants"]
    lines = [
        "chaos campaign: %d cycle(s), %d kill(s), %d job(s) accepted"
        % (len(report["cycles"]), invariants["kills"],
           invariants["accepted"]),
        "  accepted jobs lost ............ %d" % invariants["lost"],
        "  duplicate executions .......... %d"
        % invariants["duplicate_executions"],
        "  replay mismatches ............. %d"
        % invariants["replay_mismatches"],
        "  worst recovery ................ %.3fs (budget %.1fs)"
        % (invariants["recovery_worst_s"], invariants["recovery_budget_s"]),
        "  protocol errors survived ...... %d"
        % invariants["protocol_errors_survived"],
        "  deduplicated replays .......... %d"
        % invariants["deduped_replays"],
        "  store objects sabotaged ....... %d"
        % invariants["store_corruptions"],
        "verdict: %s" % ("OK" if report["ok"] else "FAILED"),
    ]
    if invariants["lost_ids"]:
        lines.append("  lost: %s" % ", ".join(invariants["lost_ids"]))
    if invariants["mismatched_ids"]:
        lines.append(
            "  mismatched: %s" % ", ".join(invariants["mismatched_ids"])
        )
    return "\n".join(lines)
