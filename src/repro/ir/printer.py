"""Human-readable textual dumps of the IR, for debugging and golden tests."""

from repro.ir.operations import OpCode


def format_operand(operand):
    return repr(operand)


def _address(op):
    """Render a memory operation's address: ``base`` or ``base+offset``."""
    text = repr(op.index_operand())
    offset = op.offset_operand()
    if offset is not None:
        text += "+%r" % (offset,)
    return text


def format_operation(op):
    """Render one operation, e.g. ``fmac f3, f1, f2`` or ``load f1, A[a0]``."""
    name = op.opcode.value
    if op.opcode is OpCode.LOAD:
        text = "%s %r, %s[%s]" % (name, op.dest, op.symbol.name, _address(op))
    elif op.opcode is OpCode.STORE:
        text = "%s %s[%s], %r" % (name, op.symbol.name, _address(op), op.sources[0])
        if op.locked:
            text += " !lock"
        if op.shadow:
            text += " !shadow"
    elif op.opcode is OpCode.CALL:
        args = ", ".join(repr(s) for s in op.sources)
        text = "call %s(%s)" % (op.callee, args)
        if op.dest is not None:
            text = "%r = %s" % (op.dest, text)
    elif op.opcode is OpCode.RET:
        text = "ret" + ("" if not op.sources else " %r" % (op.sources[0],))
    elif op.is_control or op.opcode in (OpCode.LOOP_END, OpCode.NOP):
        parts = [name]
        if op.sources:
            parts.append(", ".join(repr(s) for s in op.sources))
        if op.target is not None:
            parts.append(repr(op.target))
        text = " ".join(parts)
    else:
        operands = [repr(op.dest)] if op.dest is not None else []
        operands.extend(repr(s) for s in op.sources)
        text = "%s %s" % (name, ", ".join(operands))
    if op.is_memory and op.bank is not None:
        text += "  ;bank=%s" % op.bank.value
    return text


def format_block(block):
    lines = ["%s:  ; depth=%d" % (block.label, block.loop_depth)]
    for op in block.ops:
        lines.append("    " + format_operation(op))
    return "\n".join(lines)


def format_function(function):
    params = ", ".join(s.name for s in function.params)
    lines = ["func %s(%s) {" % (function.name, params)]
    for sym in function.local_symbols():
        lines.append("    local %s[%d]" % (sym.name, sym.size))
    for block in function.blocks:
        lines.append(format_block(block))
    lines.append("}")
    return "\n".join(lines)


def format_module(module):
    lines = ["module %s" % module.name]
    for sym in module.globals:
        bank = sym.bank.value if sym.bank is not None else "?"
        lines.append("global %s[%d] : bank %s" % (sym.name, sym.size, bank))
    for func in module.functions.values():
        lines.append(format_function(func))
    return "\n".join(lines)
