"""Machine operations of the VLIW model architecture.

Every operation executes on exactly one class of functional unit
(paper Figure 2):

========  =======================================  ==================
Unit      Operations                               Instances
========  =======================================  ==================
``PCU``   branches, calls, hardware loops, halt    1
``MU``    loads and stores                         2 (MU0->X, MU1->Y)
``AU``    address arithmetic and compares          2 (AU0, AU1)
``DU``    integer arithmetic, logic, compares      2 (DU0, DU1)
``FPU``   floating-point arithmetic, MAC, convert  2 (FPU0, FPU1)
========  =======================================  ==================

All units have a single clock-cycle latency.  The operation stream produced
by the front-end is *unpacked*: the compaction pass later packs independent
operations into long (VLIW) instructions subject to these unit constraints.
"""

import enum

from repro.ir.values import Label, is_register


class UnitClass(enum.Enum):
    """Functional-unit class an operation executes on."""

    PCU = "PCU"
    MU = "MU"
    AU = "AU"
    DU = "DU"
    FPU = "FPU"

    def __repr__(self):
        return "UnitClass.%s" % self.name


class OpKind(enum.Enum):
    """Broad behavioural category used by analyses and the scheduler."""

    COMPUTE = "compute"
    LOAD = "load"
    STORE = "store"
    CONTROL = "control"
    PSEUDO = "pseudo"


def _int_div(a, b):
    """C-style truncating integer division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _int_mod(a, b):
    """C-style remainder: sign follows the dividend."""
    return a - _int_div(a, b) * b


class OpInfo:
    """Static description of an opcode: unit, kind, and evaluator."""

    __slots__ = ("unit", "kind", "sources", "has_dest", "evaluate", "commutative")

    def __init__(self, unit, kind, sources, has_dest, evaluate=None, commutative=False):
        self.unit = unit
        self.kind = kind
        self.sources = sources
        self.has_dest = has_dest
        self.evaluate = evaluate
        self.commutative = commutative


class OpCode(enum.Enum):
    """All opcodes of the model architecture."""

    # Integer data units (DU)
    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    MOD = "mod"
    NEG = "neg"
    ABS = "abs"
    MIN = "min"
    MAX = "max"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOT = "not"
    SHL = "shl"
    SHR = "shr"
    CMPEQ = "cmpeq"
    CMPNE = "cmpne"
    CMPLT = "cmplt"
    CMPLE = "cmple"
    CMPGT = "cmpgt"
    CMPGE = "cmpge"
    MOV = "mov"
    CONST = "const"

    # Floating-point units (FPU)
    FADD = "fadd"
    FSUB = "fsub"
    FMUL = "fmul"
    FDIV = "fdiv"
    FNEG = "fneg"
    FABS = "fabs"
    FMIN = "fmin"
    FMAX = "fmax"
    FMAC = "fmac"
    FSQRT = "fsqrt"
    FCMPEQ = "fcmpeq"
    FCMPNE = "fcmpne"
    FCMPLT = "fcmplt"
    FCMPLE = "fcmple"
    FCMPGT = "fcmpgt"
    FCMPGE = "fcmpge"
    FMOV = "fmov"
    FCONST = "fconst"
    ITOF = "itof"
    FTOI = "ftoi"

    # Address units (AU)
    AADD = "aadd"
    ASUB = "asub"
    AMUL = "amul"
    AMOV = "amov"
    ACONST = "aconst"
    ACMPEQ = "acmpeq"
    ACMPNE = "acmpne"
    ACMPLT = "acmplt"
    ACMPLE = "acmple"
    ACMPGT = "acmpgt"
    ACMPGE = "acmpge"
    MOVIA = "movia"  # integer file -> address file
    MOVAI = "movai"  # address file -> integer file

    # Memory units (MU)
    LOAD = "load"
    STORE = "store"

    # Program control unit (PCU)
    BR = "br"
    BRT = "brt"
    BRF = "brf"
    CALL = "call"
    RET = "ret"
    LOOP_BEGIN = "loop_begin"
    LOOP_END = "loop_end"
    HALT = "halt"
    NOP = "nop"

    def __repr__(self):
        return "OpCode.%s" % self.name


_DU = UnitClass.DU
_FPU = UnitClass.FPU
_AU = UnitClass.AU
_MU = UnitClass.MU
_PCU = UnitClass.PCU
_C = OpKind.COMPUTE

_OP_TABLE = {
    OpCode.ADD: OpInfo(_DU, _C, 2, True, lambda a, b: a + b, commutative=True),
    OpCode.SUB: OpInfo(_DU, _C, 2, True, lambda a, b: a - b),
    OpCode.MUL: OpInfo(_DU, _C, 2, True, lambda a, b: a * b, commutative=True),
    OpCode.DIV: OpInfo(_DU, _C, 2, True, _int_div),
    OpCode.MOD: OpInfo(_DU, _C, 2, True, _int_mod),
    OpCode.NEG: OpInfo(_DU, _C, 1, True, lambda a: -a),
    OpCode.ABS: OpInfo(_DU, _C, 1, True, abs),
    OpCode.MIN: OpInfo(_DU, _C, 2, True, min, commutative=True),
    OpCode.MAX: OpInfo(_DU, _C, 2, True, max, commutative=True),
    OpCode.AND: OpInfo(_DU, _C, 2, True, lambda a, b: a & b, commutative=True),
    OpCode.OR: OpInfo(_DU, _C, 2, True, lambda a, b: a | b, commutative=True),
    OpCode.XOR: OpInfo(_DU, _C, 2, True, lambda a, b: a ^ b, commutative=True),
    OpCode.NOT: OpInfo(_DU, _C, 1, True, lambda a: ~a),
    OpCode.SHL: OpInfo(_DU, _C, 2, True, lambda a, b: a << b),
    OpCode.SHR: OpInfo(_DU, _C, 2, True, lambda a, b: a >> b),
    OpCode.CMPEQ: OpInfo(_DU, _C, 2, True, lambda a, b: int(a == b)),
    OpCode.CMPNE: OpInfo(_DU, _C, 2, True, lambda a, b: int(a != b)),
    OpCode.CMPLT: OpInfo(_DU, _C, 2, True, lambda a, b: int(a < b)),
    OpCode.CMPLE: OpInfo(_DU, _C, 2, True, lambda a, b: int(a <= b)),
    OpCode.CMPGT: OpInfo(_DU, _C, 2, True, lambda a, b: int(a > b)),
    OpCode.CMPGE: OpInfo(_DU, _C, 2, True, lambda a, b: int(a >= b)),
    OpCode.MOV: OpInfo(_DU, _C, 1, True, lambda a: a),
    OpCode.CONST: OpInfo(_DU, _C, 1, True, lambda a: a),
    OpCode.FADD: OpInfo(_FPU, _C, 2, True, lambda a, b: a + b, commutative=True),
    OpCode.FSUB: OpInfo(_FPU, _C, 2, True, lambda a, b: a - b),
    OpCode.FMUL: OpInfo(_FPU, _C, 2, True, lambda a, b: a * b, commutative=True),
    OpCode.FDIV: OpInfo(_FPU, _C, 2, True, lambda a, b: a / b),
    OpCode.FNEG: OpInfo(_FPU, _C, 1, True, lambda a: -a),
    OpCode.FABS: OpInfo(_FPU, _C, 1, True, abs),
    OpCode.FMIN: OpInfo(_FPU, _C, 2, True, min, commutative=True),
    OpCode.FMAX: OpInfo(_FPU, _C, 2, True, max, commutative=True),
    # FMAC reads its destination as an implicit accumulator: dest += a * b.
    OpCode.FMAC: OpInfo(_FPU, _C, 2, True, None),
    OpCode.FSQRT: OpInfo(_FPU, _C, 1, True, lambda a: a ** 0.5),
    OpCode.FCMPEQ: OpInfo(_FPU, _C, 2, True, lambda a, b: int(a == b)),
    OpCode.FCMPNE: OpInfo(_FPU, _C, 2, True, lambda a, b: int(a != b)),
    OpCode.FCMPLT: OpInfo(_FPU, _C, 2, True, lambda a, b: int(a < b)),
    OpCode.FCMPLE: OpInfo(_FPU, _C, 2, True, lambda a, b: int(a <= b)),
    OpCode.FCMPGT: OpInfo(_FPU, _C, 2, True, lambda a, b: int(a > b)),
    OpCode.FCMPGE: OpInfo(_FPU, _C, 2, True, lambda a, b: int(a >= b)),
    OpCode.FMOV: OpInfo(_FPU, _C, 1, True, lambda a: a),
    OpCode.FCONST: OpInfo(_FPU, _C, 1, True, lambda a: a),
    OpCode.ITOF: OpInfo(_FPU, _C, 1, True, float),
    OpCode.FTOI: OpInfo(_FPU, _C, 1, True, lambda a: int(a)),
    OpCode.AADD: OpInfo(_AU, _C, 2, True, lambda a, b: a + b, commutative=True),
    OpCode.ASUB: OpInfo(_AU, _C, 2, True, lambda a, b: a - b),
    OpCode.AMUL: OpInfo(_AU, _C, 2, True, lambda a, b: a * b, commutative=True),
    OpCode.AMOV: OpInfo(_AU, _C, 1, True, lambda a: a),
    OpCode.ACONST: OpInfo(_AU, _C, 1, True, lambda a: a),
    OpCode.ACMPEQ: OpInfo(_AU, _C, 2, True, lambda a, b: int(a == b)),
    OpCode.ACMPNE: OpInfo(_AU, _C, 2, True, lambda a, b: int(a != b)),
    OpCode.ACMPLT: OpInfo(_AU, _C, 2, True, lambda a, b: int(a < b)),
    OpCode.ACMPLE: OpInfo(_AU, _C, 2, True, lambda a, b: int(a <= b)),
    OpCode.ACMPGT: OpInfo(_AU, _C, 2, True, lambda a, b: int(a > b)),
    OpCode.ACMPGE: OpInfo(_AU, _C, 2, True, lambda a, b: int(a >= b)),
    OpCode.MOVIA: OpInfo(_AU, _C, 1, True, lambda a: a),
    OpCode.MOVAI: OpInfo(_AU, _C, 1, True, lambda a: a),
    # Memory operations take a base index plus an optional offset operand
    # (the DSP56001's indexed (Rn+Nn) addressing mode), so their source
    # counts are variable: LOAD (index[, offset]), STORE (value, index
    # [, offset]).
    OpCode.LOAD: OpInfo(_MU, OpKind.LOAD, -1, True),
    OpCode.STORE: OpInfo(_MU, OpKind.STORE, -1, False),
    OpCode.BR: OpInfo(_PCU, OpKind.CONTROL, 0, False),
    OpCode.BRT: OpInfo(_PCU, OpKind.CONTROL, 1, False),
    OpCode.BRF: OpInfo(_PCU, OpKind.CONTROL, 1, False),
    OpCode.CALL: OpInfo(_PCU, OpKind.CONTROL, -1, False),
    OpCode.RET: OpInfo(_PCU, OpKind.CONTROL, -1, False),
    OpCode.LOOP_BEGIN: OpInfo(_PCU, OpKind.CONTROL, 1, False),
    OpCode.LOOP_END: OpInfo(_PCU, OpKind.PSEUDO, 0, False),
    OpCode.HALT: OpInfo(_PCU, OpKind.CONTROL, 0, False),
    OpCode.NOP: OpInfo(_PCU, OpKind.PSEUDO, 0, False),
}


def opcode_info(opcode):
    """Return the static :class:`OpInfo` for *opcode*."""
    return _OP_TABLE[opcode]


#: Opcodes that terminate a basic block.
TERMINATORS = frozenset(
    {OpCode.BR, OpCode.BRT, OpCode.BRF, OpCode.RET, OpCode.HALT}
)


class Operation:
    """A single unpacked machine operation.

    Parameters
    ----------
    opcode:
        The :class:`OpCode`.
    dest:
        Destination virtual register, or None.
    sources:
        Tuple of source operands (registers or immediates).  For ``LOAD``
        the single source is the index operand; for ``STORE`` the sources
        are ``(value, index)``.
    symbol:
        The :class:`~repro.ir.symbols.Symbol` accessed (memory ops only).
    target:
        Branch-target :class:`~repro.ir.values.Label` (control ops only).
    callee:
        Called function name (``CALL`` only).
    bank:
        Bank tag placed on memory operations by the allocation pass;
        None until allocation runs.
    locked:
        True for the interrupt-atomic store pair used to update duplicated
        data (paper Section 3.2: store-lock / store-unlock).
    """

    __slots__ = (
        "opcode",
        "dest",
        "sources",
        "symbol",
        "target",
        "callee",
        "bank",
        "locked",
        "shadow",
    )

    def __init__(
        self,
        opcode,
        dest=None,
        sources=(),
        symbol=None,
        target=None,
        callee=None,
        bank=None,
        locked=False,
        shadow=False,
    ):
        info = _OP_TABLE[opcode]
        if info.has_dest and dest is None:
            raise ValueError("%s requires a destination" % opcode.name)
        if not info.has_dest and dest is not None and opcode is not OpCode.CALL:
            # CALL's destination is optional: it receives the return value.
            raise ValueError("%s does not take a destination" % opcode.name)
        if info.sources >= 0 and len(sources) != info.sources:
            raise ValueError(
                "%s takes %d sources, got %d" % (opcode.name, info.sources, len(sources))
            )
        if target is not None and not isinstance(target, Label):
            raise TypeError("target must be a Label, got %r" % (target,))
        self.opcode = opcode
        self.dest = dest
        self.sources = tuple(sources)
        self.symbol = symbol
        self.target = target
        self.callee = callee
        self.bank = bank
        self.locked = locked
        #: True for the second (integrity) store of a duplicated-data update.
        self.shadow = shadow

    @property
    def info(self):
        return _OP_TABLE[self.opcode]

    @property
    def unit(self):
        return _OP_TABLE[self.opcode].unit

    @property
    def is_load(self):
        return self.opcode is OpCode.LOAD

    @property
    def is_store(self):
        return self.opcode is OpCode.STORE

    @property
    def is_memory(self):
        return self.opcode is OpCode.LOAD or self.opcode is OpCode.STORE

    @property
    def is_control(self):
        return _OP_TABLE[self.opcode].kind is OpKind.CONTROL

    @property
    def is_terminator(self):
        return self.opcode in TERMINATORS

    def reads(self):
        """Virtual registers read by this operation.

        ``FMAC`` additionally reads its destination (accumulator input),
        which is what creates the loop-carried dependence in MAC loops.
        """
        regs = [s for s in self.sources if is_register(s)]
        if self.opcode is OpCode.FMAC:
            regs.append(self.dest)
        return regs

    def writes(self):
        """Virtual registers written by this operation."""
        return [self.dest] if self.dest is not None else []

    def index_operand(self):
        """The base index operand of a memory operation."""
        if self.is_load:
            return self.sources[0]
        if self.is_store:
            return self.sources[1]
        raise ValueError("%s has no index operand" % self.opcode.name)

    def offset_operand(self):
        """The optional offset operand ((Rn+Nn) addressing), or None."""
        if self.is_load:
            return self.sources[1] if len(self.sources) > 1 else None
        if self.is_store:
            return self.sources[2] if len(self.sources) > 2 else None
        raise ValueError("%s has no offset operand" % self.opcode.name)

    def replace_sources(self, mapping):
        """Return sources with registers substituted through *mapping*."""
        return tuple(mapping.get(s, s) if is_register(s) else s for s in self.sources)

    def __repr__(self):
        from repro.ir.printer import format_operation

        return "<Op %s>" % format_operation(self)
