"""Intermediate representation for the dual-bank DSP compiler.

The IR is a sequence of *unpacked* three-address machine operations — the
form the paper's GNU-C front-end hands to the optimizing back-end.  Each
operation names at most one destination virtual register, a tuple of source
operands (virtual registers or immediates), and, for memory operations, the
:class:`~repro.ir.symbols.Symbol` it accesses plus an index operand.

Programs are organized as :class:`~repro.ir.module.Module` objects holding
:class:`~repro.ir.function.Function` objects, each a list of
:class:`~repro.ir.block.BasicBlock` objects annotated with loop-nesting
depth (the edge-weight heuristic of the paper's Section 3.1).
"""

from repro.ir.types import DataType, RegClass
from repro.ir.values import Immediate, Label, Operand, VirtualRegister
from repro.ir.symbols import MemoryBank, Storage, Symbol, SymbolTable
from repro.ir.operations import OpCode, Operation, UnitClass, opcode_info
from repro.ir.block import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.printer import format_function, format_module, format_operation
from repro.ir.validate import IRValidationError, validate_function, validate_module

__all__ = [
    "BasicBlock",
    "DataType",
    "Function",
    "IRValidationError",
    "Immediate",
    "Label",
    "MemoryBank",
    "Module",
    "OpCode",
    "Operand",
    "Operation",
    "RegClass",
    "Storage",
    "Symbol",
    "SymbolTable",
    "UnitClass",
    "VirtualRegister",
    "format_function",
    "format_module",
    "format_operation",
    "opcode_info",
    "validate_function",
    "validate_module",
]
