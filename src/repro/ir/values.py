"""Operand values: virtual registers, immediates, and branch labels."""

from repro.ir.types import DataType


class VirtualRegister:
    """An SSA-ish virtual register, later mapped to a physical register.

    Virtual registers are unlimited in number; the linear-scan allocator in
    :mod:`repro.compiler.regalloc` maps them onto the 32 physical registers
    of the appropriate file, spilling to the stack when necessary.

    Instances are identity-hashed: two registers are the same operand only
    if they are the same object, which keeps renaming explicit.
    """

    __slots__ = ("index", "rclass", "name", "physical")

    def __init__(self, index, rclass, name=None):
        self.index = index
        self.rclass = rclass
        #: Optional human-readable name for IR dumps (e.g. the loop variable).
        self.name = name
        #: Physical register number assigned by register allocation, or None.
        self.physical = None

    @property
    def data_type(self):
        return self.rclass.data_type

    def __repr__(self):
        base = "%s%d" % (self.rclass.value, self.index)
        if self.name:
            base += ":%s" % self.name
        if self.physical is not None:
            base += "@%d" % self.physical
        return base


class Immediate:
    """A compile-time constant operand."""

    __slots__ = ("value", "data_type")

    def __init__(self, value, data_type=None):
        if data_type is None:
            data_type = DataType.FLOAT if isinstance(value, float) else DataType.INT
        if data_type is DataType.INT:
            value = int(value)
        else:
            value = float(value)
        self.value = value
        self.data_type = data_type

    def __eq__(self, other):
        return (
            isinstance(other, Immediate)
            and self.value == other.value
            and self.data_type is other.data_type
        )

    def __hash__(self):
        return hash((self.value, self.data_type))

    def __repr__(self):
        return "#%r" % (self.value,)


class Label:
    """A branch target naming a basic block within a function."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def __eq__(self, other):
        return isinstance(other, Label) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return "@%s" % self.name


#: Union of the types allowed as operation sources.
Operand = (VirtualRegister, Immediate)


def is_register(operand):
    """True if *operand* is a virtual register (as opposed to an immediate)."""
    return isinstance(operand, VirtualRegister)
