"""Operand values: virtual registers, immediates, and branch labels.

``Immediate`` and ``Label`` are *interned* while a
:class:`~repro.ir.intern.BuildContext` is active (i.e. under a
:class:`~repro.frontend.builder.ProgramBuilder`): structurally equal
operands are then pointer-identical, so operand comparison and
fingerprinting inside the front-end degenerate to identity tests.
Outside a build context construction is plain — compiler passes that
synthesize operands get fresh, unshared objects, exactly as before.
"""

from repro.ir.intern import current_context
from repro.ir.types import DataType

import sys


class VirtualRegister:
    """An SSA-ish virtual register, later mapped to a physical register.

    Virtual registers are unlimited in number; the linear-scan allocator in
    :mod:`repro.compiler.regalloc` maps them onto the 32 physical registers
    of the appropriate file, spilling to the stack when necessary.

    Instances are identity-hashed: two registers are the same operand only
    if they are the same object, which keeps renaming explicit.  They are
    mutable (``physical`` is assigned by register allocation) and so are
    never interned.
    """

    __slots__ = ("index", "rclass", "name", "physical")

    def __init__(self, index, rclass, name=None):
        self.index = index
        self.rclass = rclass
        #: Optional human-readable name for IR dumps (e.g. the loop variable).
        self.name = sys.intern(name) if type(name) is str else name
        #: Physical register number assigned by register allocation, or None.
        self.physical = None

    @property
    def data_type(self):
        return self.rclass.data_type

    def __repr__(self):
        base = "%s%d" % (self.rclass.value, self.index)
        if self.name:
            base += ":%s" % self.name
        if self.physical is not None:
            base += "@%d" % self.physical
        return base


class Immediate:
    """A compile-time constant operand.

    Interned per build context by ``(value, data_type)`` — the
    normalized value, so ``Immediate(True)`` and ``Immediate(1)`` are
    one object under a builder.  Immutable once constructed.
    """

    __slots__ = ("value", "data_type")

    @staticmethod
    def _normalize(value, data_type):
        if data_type is None:
            data_type = DataType.FLOAT if isinstance(value, float) else DataType.INT
        if data_type is DataType.INT:
            return int(value), data_type
        return float(value), data_type

    def __new__(cls, value=None, data_type=None):
        context = current_context()
        if context is None or value is None:
            # value None is the pickle/deepcopy reconstruction path
            # (protocol 2 calls ``cls.__new__(cls)``); state arrives via
            # __setstate__ afterwards.
            return object.__new__(cls)
        key = cls._normalize(value, data_type)
        interned = context.immediates.get(key)
        if interned is not None:
            context.count_hit(cls)
            return interned
        interned = object.__new__(cls)
        context.immediates[key] = interned
        context.count_created(cls)
        return interned

    def __init__(self, value=None, data_type=None):
        self.value, self.data_type = self._normalize(value, data_type)

    def __eq__(self, other):
        return (
            isinstance(other, Immediate)
            and self.value == other.value
            and self.data_type is other.data_type
        )

    def __hash__(self):
        return hash((self.value, self.data_type))

    def __repr__(self):
        return "#%r" % (self.value,)


class Label:
    """A branch target naming a basic block within a function.

    Interned per build context by name; the name string itself is
    interned so label comparison is effectively a pointer check.
    """

    __slots__ = ("name",)

    def __new__(cls, name=None):
        context = current_context()
        if context is None or name is None:
            return object.__new__(cls)
        interned = context.labels.get(name)
        if interned is not None:
            context.count_hit(cls)
            return interned
        interned = object.__new__(cls)
        context.labels[name] = interned
        context.count_created(cls)
        return interned

    def __init__(self, name=None):
        self.name = sys.intern(name) if type(name) is str else name

    def __eq__(self, other):
        return isinstance(other, Label) and self.name == other.name

    def __hash__(self):
        return hash(self.name)

    def __repr__(self):
        return "@%s" % self.name


#: Union of the types allowed as operation sources.
Operand = (VirtualRegister, Immediate)


def is_register(operand):
    """True if *operand* is a virtual register (as opposed to an immediate)."""
    return isinstance(operand, VirtualRegister)
