"""Program symbols: the variables and arrays the allocation pass partitions.

A :class:`Symbol` is the unit of data allocation.  Following the paper, an
array is treated as a *monolithic entity* that is allocated in its entirety
to a single memory bank (a direct consequence of high-order interleaving).
Partial data duplication may instead place a copy of a symbol in *both*
banks (``MemoryBank.BOTH``).
"""

import enum
import sys

from repro.ir.types import DataType


class Storage(enum.Enum):
    """Where a symbol lives.

    ``GLOBAL`` symbols are laid out by the linker at fixed bank addresses.
    ``LOCAL`` symbols live in a function's stack frame; after partitioning
    the compiler maintains two stacks, one per bank (paper Section 3.1).
    ``PARAM`` symbols are function parameters passed in registers; they
    never occupy memory and are excluded from partitioning.
    """

    GLOBAL = "global"
    LOCAL = "local"
    PARAM = "param"


class MemoryBank(enum.Enum):
    """Data-memory bank assignment of a symbol or memory operation.

    ``X`` and ``Y`` are the two single-ported banks (accessed through memory
    units MU0 and MU1 respectively).  ``BOTH`` marks a duplicated symbol:
    a copy lives in each bank, loads may be served from either, and stores
    must update both copies.
    """

    X = "X"
    Y = "Y"
    BOTH = "XY"

    @property
    def is_duplicated(self):
        return self is MemoryBank.BOTH

    def __repr__(self):
        return "MemoryBank.%s" % self.name


class Symbol:
    """A named variable or array.

    Parameters
    ----------
    name:
        Unique name within its scope (module for globals, function for
        locals and params).
    data_type:
        Element type; every element occupies one memory word.
    size:
        Number of elements; 1 for scalars.
    storage:
        One of :class:`Storage`.
    initializer:
        Optional sequence of initial element values (globals only).
    opaque:
        True for symbols whose accesses cannot be disambiguated at compile
        time (the paper's conservative case, e.g. data reached through
        pointers passed on the stack).  Opaque symbols are pinned to bank X
        and never duplicated.
    """

    __slots__ = (
        "name",
        "data_type",
        "size",
        "storage",
        "initializer",
        "opaque",
        "bank",
        "duplicated",
        "function",
    )

    def __init__(
        self,
        name,
        data_type=DataType.FLOAT,
        size=1,
        storage=Storage.GLOBAL,
        initializer=None,
        opaque=False,
    ):
        if size < 1:
            raise ValueError("symbol %r must have size >= 1, got %d" % (name, size))
        if initializer is not None and len(initializer) > size:
            raise ValueError(
                "initializer for %r has %d elements but size is %d"
                % (name, len(initializer), size)
            )
        # Symbol names key interference graphs, partitions, and caches
        # all over the compiler; interning makes those string compares
        # pointer checks.  The Symbol itself stays mutable (bank and
        # duplicated are assigned by allocation) and is never consed.
        self.name = sys.intern(name) if type(name) is str else name
        self.data_type = data_type
        self.size = size
        self.storage = storage
        self.initializer = list(initializer) if initializer is not None else None
        self.opaque = opaque
        #: Bank assignment produced by the data-allocation pass.
        self.bank = None
        #: True once the symbol has been duplicated into both banks.
        self.duplicated = False
        #: Owning function name for locals/params; None for globals.
        self.function = None

    @property
    def is_array(self):
        return self.size > 1

    @property
    def is_partitionable(self):
        """Whether the allocation pass may place this symbol.

        Parameters live in registers, and opaque symbols are pinned
        conservatively, so neither participates in partitioning.
        """
        return self.storage is not Storage.PARAM and not self.opaque

    def words(self):
        """Memory words this symbol occupies in a single bank."""
        return self.size

    def __repr__(self):
        tag = "%s %s" % (self.storage.value, self.name)
        if self.is_array:
            tag += "[%d]" % self.size
        if self.bank is not None:
            tag += ":%s" % self.bank.value
        return "<Symbol %s>" % tag


class SymbolTable:
    """Ordered collection of symbols with unique names."""

    __slots__ = ("_symbols",)

    def __init__(self):
        self._symbols = {}

    def add(self, symbol):
        if symbol.name in self._symbols:
            raise ValueError("duplicate symbol %r" % symbol.name)
        self._symbols[symbol.name] = symbol
        return symbol

    def get(self, name):
        return self._symbols[name]

    def __contains__(self, name):
        return name in self._symbols

    def __iter__(self):
        return iter(self._symbols.values())

    def __len__(self):
        return len(self._symbols)

    def arrays(self):
        return [s for s in self if s.is_array]

    def scalars(self):
        return [s for s in self if not s.is_array]
