"""Per-build interning and hash-consing of IR and frontend nodes.

A :class:`BuildContext` owns the tables that make structurally equal
nodes pointer-identical while one program is being built:

* the **cons table** maps a structural key — node class plus the
  identities of already-consed children — to the unique node carrying
  that structure, so ``a[i] + a[i]`` builds one ``BinOp`` whose two
  children are the same object;
* the **immediate table** interns :class:`~repro.ir.values.Immediate`
  operands by ``(value, data_type)``;
* the **label table** interns :class:`~repro.ir.values.Label` branch
  targets by name.

Keys never contain the nodes themselves (DSL expressions overload
``__eq__`` into :class:`~repro.frontend.expressions.Compare` and are
deliberately unhashable); children are keyed by ``id()``, which is
sound because every entry's node keeps its children alive for the life
of the table.

Contexts are scoped, not global: :class:`~repro.frontend.builder.
ProgramBuilder` activates one on construction and retires it in
``build()``, so two builds can never alias nodes (no cross-build
leakage) and node construction outside any builder — the compiler
passes, the simulators — is plain and unshared.  The active-context
stack is thread-local and holds weak references, so an abandoned
builder cannot pin its tables in memory.

Sharing is only sound because built nodes are immutable: rewriting code
(the lowerer, the trip-count folder) reconstructs expressions instead
of mutating them, and the property suite in
``tests/frontend/test_hash_consing.py`` holds that line.
"""

import threading
import weakref


class BuildContext:
    """Cons/intern tables plus per-class statistics for one build."""

    __slots__ = ("cons", "immediates", "labels", "created", "hits",
                 "__weakref__")

    def __init__(self):
        self.cons = {}
        self.immediates = {}
        self.labels = {}
        #: nodes actually constructed, per class name
        self.created = {}
        #: constructions answered from a table instead, per class name
        self.hits = {}

    # -- statistics ----------------------------------------------------
    def count_created(self, cls):
        name = cls.__name__
        self.created[name] = self.created.get(name, 0) + 1

    def count_hit(self, cls):
        name = cls.__name__
        self.hits[name] = self.hits.get(name, 0) + 1

    def stats(self):
        """JSON-able snapshot: counts, hit rates, and table sizes."""
        created = sum(self.created.values())
        hits = sum(self.hits.values())
        attempts = created + hits
        return {
            "created": dict(sorted(self.created.items())),
            "hits": dict(sorted(self.hits.items())),
            "nodes_created": created,
            "cons_hits": hits,
            "cons_hit_rate": round(hits / attempts, 4) if attempts else 0.0,
            "cons_entries": len(self.cons),
            "immediate_entries": len(self.immediates),
            "label_entries": len(self.labels),
        }


_LOCAL = threading.local()


def _stack():
    stack = getattr(_LOCAL, "stack", None)
    if stack is None:
        stack = _LOCAL.stack = []
    return stack


def current_context():
    """The innermost live :class:`BuildContext`, or None."""
    stack = _stack()
    while stack:
        context = stack[-1]()
        if context is not None:
            return context
        stack.pop()
    return None


def activate(context):
    """Push *context*; nodes built from here on intern through it."""
    _stack().append(weakref.ref(context))
    return context


def retire(context):
    """Remove *context* from the stack (wherever it sits)."""
    stack = _stack()
    for position in range(len(stack) - 1, -1, -1):
        if stack[position]() is context:
            del stack[position]
            return


def cons(cls, key, factory):
    """The unique node of *cls* for structural *key* in the active
    context, constructing via *factory* on first sight.  With no active
    context the factory result is returned unshared."""
    context = current_context()
    if context is None:
        return factory()
    table = context.cons
    node = table.get(key)
    if node is not None:
        context.count_hit(cls)
        return node
    node = factory()
    table[key] = node
    context.count_created(cls)
    return node
