"""Structural IR validation.

The validator catches malformed programs early — before they reach the
allocation pass, scheduler, or simulator — with errors that name the
offending function, block, and operation.
"""

from repro.ir.operations import OpCode
from repro.ir.symbols import Storage
from repro.ir.types import RegClass
from repro.ir.values import Immediate, VirtualRegister, is_register


class IRValidationError(Exception):
    """Raised when a module or function violates an IR invariant."""


def _fail(where, message):
    raise IRValidationError("%s: %s" % (where, message))


def _check_register_class(where, op, reg, expected):
    if reg.rclass is not expected:
        _fail(
            where,
            "%s expects %s register, got %r" % (op.opcode.name, expected.name, reg),
        )


_ADDR_DEST_OPS = frozenset({"AADD", "ASUB", "AMUL", "AMOV", "ACONST", "MOVIA"})


def _expected_dest_class(opcode):
    name = opcode.name
    if name.startswith(("CMP", "FCMP", "ACMP")) or name in ("MOVAI", "FTOI"):
        return RegClass.INT
    if name in _ADDR_DEST_OPS:
        return RegClass.ADDR
    if name == "ITOF" or (name.startswith("F") and name != "FTOI"):
        return RegClass.FLOAT
    return RegClass.INT


def validate_operation(where, op, function, module):
    if op.opcode is OpCode.LOAD or op.opcode is OpCode.STORE:
        if op.symbol is None:
            _fail(where, "memory operation without a symbol")
        expected_min = 1 if op.opcode is OpCode.LOAD else 2
        if not expected_min <= len(op.sources) <= expected_min + 1:
            _fail(
                where,
                "%s takes %d or %d sources, got %d"
                % (op.opcode.name, expected_min, expected_min + 1, len(op.sources)),
            )
        for operand in (op.index_operand(), op.offset_operand()):
            if operand is None:
                continue
            if is_register(operand):
                _check_register_class(where, op, operand, RegClass.ADDR)
            elif not isinstance(operand, Immediate):
                _fail(where, "address operand must be register or immediate")
        index = op.index_operand()
        sym = op.symbol
        if sym.storage is Storage.PARAM:
            _fail(where, "memory operation on PARAM symbol %r" % sym.name)
        if sym.storage is Storage.LOCAL and sym.function != function.name:
            _fail(
                where,
                "local symbol %r of %r accessed from %r"
                % (sym.name, sym.function, function.name),
            )
        if sym.storage is Storage.GLOBAL and sym.name not in module.globals:
            _fail(where, "unknown global %r" % sym.name)
        offset = op.offset_operand()
        if (
            isinstance(index, Immediate)
            and (offset is None or isinstance(offset, Immediate))
        ):
            total = index.value + (offset.value if offset is not None else 0)
            if not 0 <= total < sym.size:
                _fail(
                    where,
                    "constant index %d out of bounds for %s[%d]"
                    % (total, sym.name, sym.size),
                )
    elif op.opcode is OpCode.CALL:
        if op.callee not in module.functions:
            _fail(where, "call to unknown function %r" % op.callee)
        callee = module.functions[op.callee]
        if len(op.sources) != len(callee.params):
            _fail(
                where,
                "call to %s passes %d args, expected %d"
                % (op.callee, len(op.sources), len(callee.params)),
            )
    elif op.opcode in (OpCode.BR, OpCode.BRT, OpCode.BRF):
        if op.target is None:
            _fail(where, "branch without target")
    if op.dest is not None:
        if not isinstance(op.dest, VirtualRegister):
            _fail(where, "destination must be a virtual register")
        if not op.is_load and op.opcode is not OpCode.CALL:
            expected = _expected_dest_class(op.opcode)
            _check_register_class(where, op, op.dest, expected)


def validate_function(function, module):
    """Check one function; raises :class:`IRValidationError` on problems."""
    if not function.blocks:
        _fail(function.name, "function has no blocks")
    labels = set()
    for block in function.blocks:
        if block.label in labels:
            _fail(function.name, "duplicate block label %r" % block.label)
        labels.add(block.label)
    for block in function.blocks:
        for i, op in enumerate(block.ops):
            where = "%s/%s/#%d" % (function.name, block.label, i)
            if op.is_terminator and i != len(block.ops) - 1:
                _fail(where, "terminator %s not last in block" % op.opcode.name)
            validate_operation(where, op, function, module)
        for label in block.successor_labels():
            if label not in labels:
                _fail(block.label, "branch to unknown label %r" % label)
    last = function.blocks[-1]
    if last.falls_through() and function.name != "main":
        _fail(function.name, "final block %r falls off the function" % last.label)


def validate_module(module):
    """Check a whole program; raises :class:`IRValidationError` on problems."""
    if "main" not in module.functions:
        _fail(module.name, "module has no main function")
    for function in module.functions.values():
        validate_function(function, module)
    main_last = module.main.blocks[-1]
    term = main_last.terminator
    if term is None or term.opcode is not OpCode.HALT:
        _fail(module.name, "main must end with HALT")
    from repro.analysis.callgraph import build_callgraph, find_recursion

    cycle = find_recursion(build_callgraph(module))
    if cycle:
        _fail(module.name, "recursive call chain: %s" % " -> ".join(cycle))
