"""A reference interpreter for the *unscheduled* IR.

Executes a module exactly as the front end emitted it — sequential
operations, virtual registers, symbol-addressed memory — with no
allocation pass, no register allocator, no scheduler, and no machine
model. Its sole purpose is differential testing: the full pipeline
(bank allocation → linear scan → compaction → VLIW simulation) must
compute exactly what this 150-line walker computes, so any divergence
localizes a bug to the back end.

Semantics mirror the machine where it matters:

* ``FMAC`` reads its destination;
* integer division truncates toward zero (the opcode evaluators are
  shared with the simulator);
* hardware loops latch their count at ``LOOP_BEGIN`` and skip the body
  when it is not positive;
* locals are per-activation; parameters arrive by position.

Because operations run one at a time there is no notion of cycles here —
only results.
"""

from repro.ir.operations import OpCode, opcode_info
from repro.ir.symbols import Storage
from repro.ir.values import Immediate


class IRInterpreterError(Exception):
    """Raised on faults: bad index, runaway execution, missing main."""


class _Frame:
    """One function activation: register file and local memory."""

    def __init__(self, function):
        self.function = function
        self.registers = {}
        self.locals = {
            symbol.name: [symbol.data_type.zero] * symbol.size
            for symbol in function.local_symbols()
        }


class IRInterpreter:
    """Executes a module's IR; query globals afterwards like the simulator."""

    def __init__(self, module, max_steps=50_000_000):
        self.module = module
        self.max_steps = max_steps
        self.globals = {
            symbol.name: self._initial(symbol) for symbol in module.globals
        }
        self.steps = 0

    @staticmethod
    def _initial(symbol):
        values = [symbol.data_type.zero] * symbol.size
        if symbol.initializer:
            values[: len(symbol.initializer)] = list(symbol.initializer)
        return values

    # ------------------------------------------------------------------
    def read_global(self, name):
        values = self.globals[name]
        return values[0] if len(values) == 1 else list(values)

    def write_global(self, name, values):
        if not isinstance(values, (list, tuple)):
            values = [values]
        self.globals[name][: len(values)] = list(values)

    # ------------------------------------------------------------------
    def run(self):
        if "main" not in self.module.functions:
            raise IRInterpreterError("module has no main")
        self._call(self.module.main, [])
        return self

    def _memory(self, frame, symbol):
        if symbol.storage is Storage.GLOBAL:
            return self.globals[symbol.name]
        return frame.locals[symbol.name]

    def _value(self, frame, operand):
        if isinstance(operand, Immediate):
            return operand.value
        return frame.registers.get(operand, operand.data_type.zero)

    def _address(self, frame, op):
        index = self._value(frame, op.index_operand())
        offset = op.offset_operand()
        if offset is not None:
            index += self._value(frame, offset)
        if not 0 <= index < op.symbol.size:
            raise IRInterpreterError(
                "index %d out of bounds for %s[%d]"
                % (index, op.symbol.name, op.symbol.size)
            )
        return index

    def _call(self, function, arguments):
        frame = _Frame(function)
        for register, value in zip(function.param_registers, arguments):
            frame.registers[register] = value
        blocks = function.blocks
        index_of = {block.label: i for i, block in enumerate(blocks)}
        block_index = 0
        op_index = 0
        loop_stack = []  # [block_index, op_index, remaining]

        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise IRInterpreterError("exceeded max_steps")
            if block_index >= len(blocks):
                return None  # fell off a (main) function
            block = blocks[block_index]
            if op_index >= len(block.ops):
                block_index += 1
                op_index = 0
                continue
            op = block.ops[op_index]
            opcode = op.opcode
            advance = True

            if opcode is OpCode.LOAD:
                memory = self._memory(frame, op.symbol)
                frame.registers[op.dest] = memory[self._address(frame, op)]
            elif opcode is OpCode.STORE:
                memory = self._memory(frame, op.symbol)
                if not op.shadow:
                    memory[self._address(frame, op)] = self._value(
                        frame, op.sources[0]
                    )
            elif opcode is OpCode.FMAC:
                acc = self._value(frame, op.dest)
                frame.registers[op.dest] = acc + self._value(
                    frame, op.sources[0]
                ) * self._value(frame, op.sources[1])
            elif opcode is OpCode.CALL:
                callee = self.module.functions[op.callee]
                arguments = [self._value(frame, s) for s in op.sources]
                result = self._call(callee, arguments)
                if op.dest is not None:
                    frame.registers[op.dest] = result
            elif opcode is OpCode.RET:
                return self._value(frame, op.sources[0]) if op.sources else None
            elif opcode is OpCode.HALT:
                return None
            elif opcode is OpCode.BR:
                block_index = index_of[op.target.name]
                op_index = 0
                advance = False
            elif opcode in (OpCode.BRT, OpCode.BRF):
                taken = bool(self._value(frame, op.sources[0]))
                if opcode is OpCode.BRF:
                    taken = not taken
                if taken:
                    block_index = index_of[op.target.name]
                    op_index = 0
                    advance = False
            elif opcode is OpCode.LOOP_BEGIN:
                count = self._value(frame, op.sources[0])
                if count <= 0:
                    block_index, op_index = self._skip_loop(
                        function, op.target.name, index_of
                    )
                    advance = False
                else:
                    loop_stack.append([block_index + 1, op.target.name, count])
            elif opcode is OpCode.LOOP_END:
                record = loop_stack[-1]
                if op.target.name != record[1]:
                    raise IRInterpreterError(
                        "mismatched LOOP_END %s" % op.target.name
                    )
                record[2] -= 1
                if record[2] > 0:
                    block_index = record[0]
                    op_index = 0
                    advance = False
                else:
                    loop_stack.pop()
            elif opcode is OpCode.NOP:
                pass
            else:
                info = opcode_info(opcode)
                if info.evaluate is None:
                    raise IRInterpreterError("cannot interpret %s" % opcode.name)
                values = [self._value(frame, s) for s in op.sources]
                frame.registers[op.dest] = info.evaluate(*values)

            if advance:
                op_index += 1

    @staticmethod
    def _skip_loop(function, loop_id, index_of):
        """Position just after the LOOP_END of *loop_id*."""
        for b_index, block in enumerate(function.blocks):
            for o_index, op in enumerate(block.ops):
                if op.opcode is OpCode.LOOP_END and op.target.name == loop_id:
                    return b_index, o_index + 1
        raise IRInterpreterError("no LOOP_END for %s" % loop_id)
