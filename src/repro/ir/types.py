"""Scalar data types and register classes of the VLIW model architecture.

The model machine (paper Figure 2) has three 32-entry register files:
an address register file, an integer register file, and a floating-point
register file.  Values in memory occupy one 32-bit word regardless of type
(paper Section 4.2 assumes instructions and data are the same size).
"""

import enum


class DataType(enum.Enum):
    """Type of a value stored in a register or a memory word."""

    INT = "int"
    FLOAT = "float"

    @property
    def zero(self):
        """The zero value of this type, used to initialize memory words."""
        return 0 if self is DataType.INT else 0.0

    def __repr__(self):
        return "DataType.%s" % self.name


class RegClass(enum.Enum):
    """Register file a virtual register belongs to.

    ``ADDR`` registers feed the address units (AU0/AU1) and index memory
    operations; ``INT`` registers feed the integer data units (DU0/DU1);
    ``FLOAT`` registers feed the floating-point units (FPU0/FPU1).
    """

    ADDR = "a"
    INT = "r"
    FLOAT = "f"

    @property
    def data_type(self):
        """The scalar type carried by registers of this class."""
        return DataType.FLOAT if self is RegClass.FLOAT else DataType.INT

    def __repr__(self):
        return "RegClass.%s" % self.name


#: Number of physical registers in each register file (paper Figure 2:
#: three files of 32 x 32-bit registers).
REGISTERS_PER_FILE = 32
