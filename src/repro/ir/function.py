"""Functions: symbol scope, virtual-register factory, and block layout."""

from repro.ir.block import BasicBlock
from repro.ir.symbols import Storage, SymbolTable
from repro.ir.types import DataType, RegClass
from repro.ir.values import VirtualRegister


class Function:
    """A compiled function.

    Blocks are kept in *layout order*: control falls through from one block
    to the next unless the terminator says otherwise.  The entry block is
    ``blocks[0]``.

    Parameters are declared in order; each is a ``PARAM`` symbol bound to a
    virtual register of the matching class.  The calling convention passes
    arguments positionally per register class and returns values in the
    first register of the result's class (see ``repro.compiler.regalloc``).
    """

    def __init__(self, name):
        self.name = name
        self.blocks = []
        self.symbols = SymbolTable()
        #: Parameter symbols in declaration order.
        self.params = []
        #: Virtual register holding each parameter, parallel to ``params``.
        self.param_registers = []
        self._next_reg = 0
        self._next_label = 0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    def new_register(self, rclass, name=None):
        reg = VirtualRegister(self._next_reg, rclass, name)
        self._next_reg = self._next_reg + 1
        return reg

    def new_block(self, hint="bb", loop_depth=0):
        label = "%s.%s%d" % (self.name, hint, self._next_label)
        self._next_label = self._next_label + 1
        block = BasicBlock(label, loop_depth)
        self.blocks.append(block)
        return block

    def add_symbol(self, symbol):
        symbol.function = self.name
        self.symbols.add(symbol)
        if symbol.storage is Storage.PARAM:
            self.params.append(symbol)
            rclass = (
                RegClass.FLOAT
                if symbol.data_type is DataType.FLOAT
                else RegClass.INT
            )
            reg = self.new_register(rclass, name=symbol.name)
            self.param_registers.append(reg)
        return symbol

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def entry(self):
        return self.blocks[0]

    def block(self, label):
        for blk in self.blocks:
            if blk.label == label:
                return blk
        raise KeyError("no block %r in function %r" % (label, self.name))

    def local_symbols(self):
        return [s for s in self.symbols if s.storage is Storage.LOCAL]

    def operations(self):
        """All operations of the function in layout order."""
        for blk in self.blocks:
            for op in blk.ops:
                yield op

    def __repr__(self):
        return "<Function %s blocks=%d>" % (self.name, len(self.blocks))
