"""Basic blocks: straight-line operation sequences with one entry and exit."""

from repro.ir.operations import OpCode


class BasicBlock:
    """A labelled straight-line sequence of operations.

    Attributes
    ----------
    label:
        Unique block name within the function.
    ops:
        The unpacked operation list, in program order.  The terminator
        (branch / return / halt), if any, is the last operation.
    loop_depth:
        Loop-nesting depth: 0 outside any loop, 1 inside one loop, etc.
        This feeds the static edge-weight heuristic of paper Section 3.1.
    hw_loop:
        Set on the body block of a zero-overhead hardware loop; names the
        loop so the compaction pass can mark the loop's last instruction.
    """

    __slots__ = ("label", "ops", "loop_depth", "hw_loop", "profile_count")

    def __init__(self, label, loop_depth=0):
        self.label = label
        self.ops = []
        self.loop_depth = loop_depth
        self.hw_loop = None
        #: Execution count filled in by profiling (repro.sim.tracing).
        self.profile_count = 0

    def append(self, op):
        self.ops.append(op)
        return op

    @property
    def terminator(self):
        """The block's terminating control operation, or None."""
        if self.ops and self.ops[-1].is_terminator:
            return self.ops[-1]
        return None

    def successor_labels(self):
        """Labels of blocks this block may branch to (fallthrough excluded)."""
        term = self.terminator
        if term is None or term.target is None:
            return []
        return [term.target.name]

    def falls_through(self):
        """True if control may continue to the next block in layout order."""
        term = self.terminator
        if term is None:
            return True
        return term.opcode in (OpCode.BRT, OpCode.BRF)

    def memory_ops(self):
        return [op for op in self.ops if op.is_memory]

    def __len__(self):
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __repr__(self):
        return "<BasicBlock %s depth=%d ops=%d>" % (
            self.label,
            self.loop_depth,
            len(self.ops),
        )
