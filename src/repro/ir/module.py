"""Modules: a whole program — functions plus global symbols."""

from repro.ir.symbols import Storage, SymbolTable


class Module:
    """A complete program handed to the compiler back-end.

    Execution starts at the function named ``main`` and stops at its
    ``HALT`` terminator.
    """

    def __init__(self, name):
        self.name = name
        self.functions = {}
        self.globals = SymbolTable()

    def add_function(self, function):
        if function.name in self.functions:
            raise ValueError("duplicate function %r" % function.name)
        self.functions[function.name] = function
        return function

    def add_global(self, symbol):
        if symbol.storage is not Storage.GLOBAL:
            raise ValueError("module-level symbol %r must be GLOBAL" % symbol.name)
        return self.globals.add(symbol)

    def function(self, name):
        return self.functions[name]

    @property
    def main(self):
        return self.functions["main"]

    def all_symbols(self):
        """Every data symbol in the program: globals then locals."""
        symbols = list(self.globals)
        for func in self.functions.values():
            symbols.extend(func.local_symbols())
        return symbols

    def partitionable_symbols(self):
        """The symbols the data-allocation pass may place."""
        return [s for s in self.all_symbols() if s.is_partitionable]

    def operations(self):
        for func in self.functions.values():
            for op in func.operations():
                yield op

    def __repr__(self):
        return "<Module %s functions=%d globals=%d>" % (
            self.name,
            len(self.functions),
            len(self.globals),
        )
