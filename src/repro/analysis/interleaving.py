"""Would low-order interleaving solve the same-array cases?

Paper Section 3.2 weighs three fixes for simultaneous accesses to one
array and dismisses low-order interleaving first: with consecutive
addresses alternating between banks, ``signal[n]`` and ``signal[n+m]``
land in different banks *only when m is odd* — "low-order interleaving
does not provide a general solution for such situations."

This analysis makes that argument checkable on real programs: for every
same-array blocked pair the interference-graph builder recorded, it
classifies whether low-order interleaving would serve the pair.

==========  =========================================================
verdict     meaning
==========  =========================================================
``works``   address difference is a compile-time odd constant
``fails``   address difference is a compile-time even constant
``unknown`` the difference is not a compile-time constant (the
            paper's autocorrelation: the lag ``m`` is a loop index)
==========  =========================================================
"""

from repro.ir.values import Immediate, is_register


class PairVerdict:
    """One same-array pair and whether low-order interleaving helps."""

    def __init__(self, symbol, verdict, difference=None):
        self.symbol = symbol
        self.verdict = verdict
        #: compile-time address difference, when known
        self.difference = difference

    def __repr__(self):
        extra = "" if self.difference is None else " diff=%d" % self.difference
        return "<PairVerdict %s %s%s>" % (self.symbol.name, self.verdict, extra)


def _address_parts(op):
    """(base_register_or_None, constant_part) of a memory address."""
    index = op.index_operand()
    offset = op.offset_operand()
    constant = 0
    base = None
    if isinstance(index, Immediate):
        constant += index.value
    elif is_register(index):
        base = index
    if offset is not None:
        if isinstance(offset, Immediate):
            constant += offset.value
        else:
            return None, None  # register offset: give up
    return base, constant


def classify_pair(op_a, op_b):
    """Verdict for one pair of same-array accesses."""
    base_a, const_a = _address_parts(op_a)
    base_b, const_b = _address_parts(op_b)
    if const_a is None or const_b is None:
        return "unknown", None
    if base_a is not base_b:
        # Different (or one missing) base registers: the runtime
        # difference is not a compile-time constant.
        if base_a is None and base_b is None:
            difference = const_b - const_a
            return ("works" if difference % 2 else "fails"), difference
        return "unknown", None
    difference = const_b - const_a
    return ("works" if difference % 2 else "fails"), difference


def analyze_low_order(graph):
    """Classify every recorded same-array pair of *graph*.

    Returns a list of :class:`PairVerdict`.  If any pair is ``fails`` or
    ``unknown``, low-order interleaving is not a general substitute for
    duplication on this program — the paper's conclusion.
    """
    verdicts = []
    for symbol, op_a, op_b in graph.duplication_pairs:
        verdict, difference = classify_pair(op_a, op_b)
        verdicts.append(PairVerdict(symbol, verdict, difference))
    return verdicts


def summarize(verdicts):
    """Count verdicts: {'works': n, 'fails': n, 'unknown': n}."""
    counts = {"works": 0, "fails": 0, "unknown": 0}
    for verdict in verdicts:
        counts[verdict.verdict] += 1
    return counts
