"""Per-block data-dependence graphs.

The compaction algorithm (paper Figure 3) is local in scope: a dependence
graph is built for every basic block, covering

* register dependences — flow (read-after-write), anti (write-after-read),
  and output (write-after-write) — through virtual or physical registers;
* memory dependences between operations that may touch the same address:
  two accesses conflict when they name the same symbol (or either symbol is
  *opaque*, the paper's conservative no-alias-information case), unless both
  use distinct compile-time-constant indices;
* call barriers — a ``CALL`` is treated as reading and writing all memory.

The integrity (``shadow``) store added by data duplication writes the
*other* bank's copy of the same symbol: it never conflicts with its primary
store, which is what lets the pair pack into one long instruction.

Priorities follow the paper: an operation's priority is its number of
descendants in the dependence graph.
"""

import enum

from repro.ir.operations import OpCode
from repro.ir.values import Immediate


class DepKind(enum.Enum):
    """Dependence kinds: flow (RAW), anti (WAR), output (WAW)."""

    FLOW = "flow"
    ANTI = "anti"
    OUTPUT = "output"

    def __repr__(self):
        return "DepKind.%s" % self.name


class DependenceGraph:
    """Dependences among the operations of one basic block.

    Nodes are operation indices into ``ops``.  ``succs[i]`` maps successor
    index -> set of :class:`DepKind`; ``preds`` is the mirror image.
    """

    def __init__(self, ops):
        self.ops = list(ops)
        n = len(self.ops)
        self.succs = [dict() for _ in range(n)]
        self.preds = [dict() for _ in range(n)]
        self._priority = None

    def add_edge(self, src, dst, kind):
        if src == dst:
            raise ValueError("self-dependence at op %d" % src)
        self.succs[src].setdefault(dst, set()).add(kind)
        self.preds[dst].setdefault(src, set()).add(kind)

    def has_edge(self, src, dst, kind=None):
        kinds = self.succs[src].get(dst)
        if kinds is None:
            return False
        return True if kind is None else kind in kinds

    def hard_preds(self, node):
        """Predecessors through FLOW or OUTPUT edges (gate readiness)."""
        return [
            p
            for p, kinds in self.preds[node].items()
            if DepKind.FLOW in kinds or DepKind.OUTPUT in kinds
        ]

    def anti_preds(self, node):
        """Predecessors through ANTI-only edges (allow same-cycle issue)."""
        return [
            p
            for p, kinds in self.preds[node].items()
            if kinds == {DepKind.ANTI}
        ]

    def priorities(self):
        """Priority of every op: its number of descendants (paper Sec 3.1)."""
        if self._priority is not None:
            return self._priority
        n = len(self.ops)
        descendants = [None] * n
        visiting = [False] * n

        def visit(node):
            if descendants[node] is not None:
                return descendants[node]
            if visiting[node]:
                raise ValueError("cycle in dependence graph at op %d" % node)
            visiting[node] = True
            reached = set()
            for succ in self.succs[node]:
                reached.add(succ)
                reached.update(visit(succ))
            visiting[node] = False
            descendants[node] = reached
            return reached

        for node in range(n):
            visit(node)
        self._priority = [len(descendants[i]) for i in range(n)]
        return self._priority

    def __len__(self):
        return len(self.ops)


def _memory_conflict(op_a, op_b):
    """Whether two memory operations may touch the same address.

    Returns False for provably-disjoint accesses: different non-opaque
    symbols, distinct constant indices into the same symbol, or the
    primary/shadow store pair of a duplicated symbol (they write different
    banks' copies of the same element).
    """
    sym_a, sym_b = op_a.symbol, op_b.symbol
    if sym_a.opaque or sym_b.opaque:
        return True
    if sym_a is not sym_b:
        return False
    if op_a.is_store and op_b.is_store and op_a.shadow != op_b.shadow:
        return False
    const_a = _constant_address(op_a)
    const_b = _constant_address(op_b)
    if const_a is not None and const_b is not None and const_a != const_b:
        return False
    return True


def _constant_address(op):
    """The compile-time-constant effective index of *op*, or None."""
    index = op.index_operand()
    if not isinstance(index, Immediate):
        return None
    offset = op.offset_operand()
    if offset is None:
        return index.value
    if isinstance(offset, Immediate):
        return index.value + offset.value
    return None


def build_dependence_graph(ops):
    """Build the :class:`DependenceGraph` for one block's operation list."""
    graph = DependenceGraph(ops)
    n = len(graph.ops)
    last_writer = {}
    readers_since_write = {}
    memory_ops = []
    barrier_ops = []

    for i in range(n):
        op = graph.ops[i]
        is_barrier = op.opcode is OpCode.CALL

        for reg in op.reads():
            writer = last_writer.get(reg)
            if writer is not None and writer != i:
                graph.add_edge(writer, i, DepKind.FLOW)
            readers_since_write.setdefault(reg, []).append(i)
        for reg in op.writes():
            writer = last_writer.get(reg)
            if writer is not None and writer != i:
                graph.add_edge(writer, i, DepKind.OUTPUT)
            for reader in readers_since_write.get(reg, []):
                if reader != i:
                    graph.add_edge(reader, i, DepKind.ANTI)
            last_writer[reg] = i
            readers_since_write[reg] = []

        if op.is_memory:
            for j in memory_ops:
                other = graph.ops[j]
                if not _memory_conflict(other, op):
                    continue
                if other.is_store and op.is_load:
                    graph.add_edge(j, i, DepKind.FLOW)
                elif other.is_load and op.is_store:
                    graph.add_edge(j, i, DepKind.ANTI)
                elif other.is_store and op.is_store:
                    graph.add_edge(j, i, DepKind.OUTPUT)
            for j in barrier_ops:
                graph.add_edge(j, i, DepKind.FLOW)
            memory_ops.append(i)
        elif is_barrier:
            for j in memory_ops:
                graph.add_edge(j, i, DepKind.FLOW)
            for j in barrier_ops:
                graph.add_edge(j, i, DepKind.FLOW)
            barrier_ops.append(i)
    return graph
