"""Virtual-register liveness, feeding linear-scan register allocation.

Liveness is computed with the standard backward data-flow iteration over
the function's control-flow graph (layout fallthrough plus branch edges;
hardware-loop back-edges are included so loop-carried registers stay live
across the whole loop body).
"""

from repro.ir.operations import OpCode


class LivenessInfo:
    """Per-block live-in/live-out sets and per-register live intervals."""

    def __init__(self, live_in, live_out, intervals, positions):
        #: block label -> frozenset of registers live at block entry
        self.live_in = live_in
        #: block label -> frozenset of registers live at block exit
        self.live_out = live_out
        #: register -> (start_position, end_position) in linearized order
        self.intervals = intervals
        #: operation id -> linear position
        self.positions = positions


def _successor_labels(function, index):
    """CFG successors of block *index*, including hardware-loop back-edges."""
    block = function.blocks[index]
    labels = list(block.successor_labels())
    if block.falls_through() and index + 1 < len(function.blocks):
        labels.append(function.blocks[index + 1].label)
    if block.hw_loop is not None:
        # The loop body may re-execute: every block of the same hardware
        # loop is a potential successor via the zero-overhead back-edge.
        for other in function.blocks:
            if other.hw_loop == block.hw_loop:
                labels.append(other.label)
    return labels


def _hw_loop_spans(function):
    """Map hardware-loop id -> list of block indices forming its body.

    A hardware loop's body is the contiguous layout span from its first
    marked block through the block containing its ``LOOP_END`` marker.
    """
    spans = {}
    current_end = {}
    for index, block in enumerate(function.blocks):
        if block.hw_loop is not None:
            spans.setdefault(block.hw_loop, []).append(index)
        for op in block.ops:
            if op.opcode is OpCode.LOOP_END:
                current_end[op.target.name] = index
    for loop_id, end_index in current_end.items():
        body = spans.setdefault(loop_id, [])
        start = body[0] if body else end_index
        spans[loop_id] = list(range(start, end_index + 1))
    return spans


def compute_liveness(function):
    """Compute :class:`LivenessInfo` for *function*."""
    blocks = function.blocks
    spans = _hw_loop_spans(function)
    index_of = {block.label: i for i, block in enumerate(blocks)}

    # use/def per block
    uses = {}
    defs = {}
    for block in blocks:
        use_set = set()
        def_set = set()
        for op in block.ops:
            for reg in op.reads():
                if reg not in def_set:
                    use_set.add(reg)
            for reg in op.writes():
                def_set.add(reg)
        uses[block.label] = use_set
        defs[block.label] = def_set

    successors = {}
    for i, block in enumerate(blocks):
        labels = set(_successor_labels(function, i))
        for loop_id, span in spans.items():
            if i == span[-1]:
                # Back-edge from the loop end to the loop start block.
                labels.add(blocks[span[0]].label)
        successors[block.label] = [l for l in labels if l in index_of]

    live_in = {block.label: set() for block in blocks}
    live_out = {block.label: set() for block in blocks}
    changed = True
    while changed:
        changed = False
        for block in reversed(blocks):
            out = set()
            for succ in successors[block.label]:
                out |= live_in[succ]
            new_in = uses[block.label] | (out - defs[block.label])
            if out != live_out[block.label] or new_in != live_in[block.label]:
                live_out[block.label] = out
                live_in[block.label] = new_in
                changed = True

    # Linearize for interval construction.
    positions = {}
    pos = 0
    block_range = {}
    for block in blocks:
        start = pos
        for op in block.ops:
            positions[id(op)] = pos
            pos += 1
        block_range[block.label] = (start, max(start, pos - 1))

    intervals = {}

    def extend(reg, position):
        lo, hi = intervals.get(reg, (position, position))
        intervals[reg] = (min(lo, position), max(hi, position))

    for block in blocks:
        start, end = block_range[block.label]
        for reg in live_in[block.label]:
            extend(reg, start)
        for reg in live_out[block.label]:
            extend(reg, end)
        for op in block.ops:
            position = positions[id(op)]
            for reg in op.reads():
                extend(reg, position)
            for reg in op.writes():
                extend(reg, position)

    # Registers live around a hardware loop must survive the whole span.
    for span in spans.values():
        if not span:
            continue
        span_start = block_range[blocks[span[0]].label][0]
        span_end = block_range[blocks[span[-1]].label][1]
        loop_blocks = {blocks[i].label for i in span}
        for label in loop_blocks:
            for reg in live_in[label] | live_out[label]:
                extend(reg, span_start)
                extend(reg, span_end)

    return LivenessInfo(
        {k: frozenset(v) for k, v in live_in.items()},
        {k: frozenset(v) for k, v in live_out.items()},
        intervals,
        positions,
    )
