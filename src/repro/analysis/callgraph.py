"""Call-graph construction and recursion detection.

The back end assumes a non-recursive call structure: hardware-loop
records are matched by static instruction addresses and the register
allocator runs per function, so recursive activations are rejected at
validation time rather than miscompiled.  (Paper-era DSP code is
non-recursive for the same reasons — bounded stacks and static frames.)
"""

from repro.ir.operations import OpCode


class CallGraph:
    """Who calls whom, with call-site counts."""

    def __init__(self, edges, counts):
        #: caller name -> set of callee names
        self.edges = edges
        #: (caller, callee) -> number of call sites
        self.counts = counts

    def callees(self, name):
        return sorted(self.edges.get(name, ()))

    def callers(self, name):
        return sorted(
            caller for caller, callees in self.edges.items() if name in callees
        )

    def call_sites(self, caller, callee):
        return self.counts.get((caller, callee), 0)

    def reachable_from(self, root="main"):
        """Functions reachable from *root*, including it."""
        seen = set()
        stack = [root]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(self.edges.get(name, ()))
        return seen

    def topological_order(self):
        """Callees-first ordering; raises on recursion."""
        cycle = find_recursion(self)
        if cycle:
            raise ValueError("recursive call chain: %s" % " -> ".join(cycle))
        order = []
        visited = set()

        def visit(name):
            if name in visited:
                return
            visited.add(name)
            for callee in sorted(self.edges.get(name, ())):
                visit(callee)
            order.append(name)

        for name in sorted(self.edges):
            visit(name)
        return order


def build_callgraph(module):
    """Build the :class:`CallGraph` of *module*."""
    edges = {name: set() for name in module.functions}
    counts = {}
    for name, function in module.functions.items():
        for op in function.operations():
            if op.opcode is OpCode.CALL:
                edges[name].add(op.callee)
                key = (name, op.callee)
                counts[key] = counts.get(key, 0) + 1
    return CallGraph(edges, counts)


def find_recursion(callgraph):
    """Return one recursive call chain as a list of names, or None."""
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {name: WHITE for name in callgraph.edges}
    stack = []

    def visit(name):
        color[name] = GRAY
        stack.append(name)
        for callee in sorted(callgraph.edges.get(name, ())):
            if callee not in color:
                continue
            if color[callee] == GRAY:
                start = stack.index(callee)
                return stack[start:] + [callee]
            if color[callee] == WHITE:
                cycle = visit(callee)
                if cycle:
                    return cycle
        stack.pop()
        color[name] = BLACK
        return None

    for name in sorted(callgraph.edges):
        if color[name] == WHITE:
            cycle = visit(name)
            if cycle:
                return cycle
    return None
