"""Program analyses feeding the allocation and compaction passes."""

from repro.analysis.callgraph import CallGraph, build_callgraph, find_recursion
from repro.analysis.dependence import DepKind, DependenceGraph, build_dependence_graph
from repro.analysis.interleaving import analyze_low_order, classify_pair, summarize
from repro.analysis.liveness import LivenessInfo, compute_liveness

__all__ = [
    "CallGraph",
    "DepKind",
    "DependenceGraph",
    "LivenessInfo",
    "analyze_low_order",
    "build_callgraph",
    "build_dependence_graph",
    "classify_pair",
    "compute_liveness",
    "find_recursion",
    "summarize",
]
