"""The paper's benchmark suite: 12 DSP kernels and 11 DSP applications.

Each workload (paper Tables 1 and 2) is expressed in the DSL front-end and
paired with a NumPy/pure-Python reference model, so every configuration's
compiled code is verified functionally, not just timed.

================  ==================================================
Kernels           fft_1024, fft_256, fir_256_64, fir_32_1, iir_4_64,
                  iir_1_1, latnrm_32_64, latnrm_8_1, lmsfir_32_64,
                  lmsfir_8_1, mult_10_10, mult_4_4
Applications      adpcm, lpc, spectral, edge_detect, compress,
                  histogram, V32encode, G721MLencode, G721MLdecode,
                  G721WFencode, trellis
================  ==================================================
"""

from repro.workloads.base import Workload
from repro.workloads.registry import (
    APPLICATIONS,
    KERNELS,
    all_workloads,
    get_workload,
)

__all__ = [
    "APPLICATIONS",
    "KERNELS",
    "Workload",
    "all_workloads",
    "get_workload",
]
