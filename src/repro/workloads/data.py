"""Deterministic synthetic input data for the benchmark suite.

The paper ran its benchmarks on speech samples, images, and modem bit
streams we do not have; the results depend on access *patterns* and trip
counts, not sample values, so seeded synthetic signals preserve every
relevant behaviour (see DESIGN.md, substitution table).
"""

import math

import numpy as np


def rng(seed):
    return np.random.default_rng(seed)


def speech(n, seed=11):
    """A speech-like signal: a few harmonics plus filtered noise."""
    t = np.arange(n)
    wave = (
        0.55 * np.sin(2 * math.pi * 0.031 * t)
        + 0.25 * np.sin(2 * math.pi * 0.093 * t + 0.7)
        + 0.12 * np.sin(2 * math.pi * 0.217 * t + 1.9)
    )
    noise = rng(seed).normal(0.0, 0.05, n)
    return (wave + noise).tolist()

def samples(n, seed=7, scale=1.0):
    """Plain white-noise samples in [-scale, scale]."""
    return (rng(seed).uniform(-scale, scale, n)).tolist()


def int_samples(n, low, high, seed=23):
    """Integer samples in [low, high)."""
    return rng(seed).integers(low, high, n).tolist()


def image(height, width, seed=5, levels=256):
    """A synthetic grayscale image: smooth gradient + blobs + noise."""
    y, x = np.mgrid[0:height, 0:width]
    base = 80 + 60 * np.sin(x / 6.0) + 40 * np.cos(y / 9.0)
    blob = 70 * np.exp(-((x - width / 3.0) ** 2 + (y - height / 2.5) ** 2) / 40.0)
    noise = rng(seed).normal(0, 6.0, (height, width))
    img = np.clip(base + blob + noise, 0, levels - 1).astype(np.int64)
    return img


def hamming(n):
    """Hamming window coefficients."""
    return [0.54 - 0.46 * math.cos(2 * math.pi * i / (n - 1)) for i in range(n)]


def fir_coefficients(taps, seed=3):
    """Low-pass-like FIR coefficients (windowed sinc, normalized)."""
    cutoff = 0.22
    mid = (taps - 1) / 2.0
    coeffs = []
    for i in range(taps):
        t = i - mid
        value = 2 * cutoff if t == 0 else math.sin(2 * math.pi * cutoff * t) / (math.pi * t)
        coeffs.append(value * (0.54 - 0.46 * math.cos(2 * math.pi * i / (taps - 1))))
    total = sum(coeffs)
    return [c / total for c in coeffs]


def bit_reversal_permutation(n):
    """Bit-reversed index table for an n-point radix-2 FFT."""
    bits = n.bit_length() - 1
    table = []
    for i in range(n):
        r = 0
        v = i
        for _ in range(bits):
            r = (r << 1) | (v & 1)
            v >>= 1
        table.append(r)
    return table


def twiddles(n):
    """(real, imag) twiddle-factor tables W_n^k for k in [0, n/2)."""
    real = [math.cos(-2 * math.pi * k / n) for k in range(n // 2)]
    imag = [math.sin(-2 * math.pi * k / n) for k in range(n // 2)]
    return real, imag


def bits(n, seed=17):
    """A pseudo-random bit stream."""
    return rng(seed).integers(0, 2, n).tolist()
