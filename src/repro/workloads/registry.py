"""Name -> workload registry for the whole suite (paper Tables 1 and 2)."""

from repro.workloads.kernels.fir import Fir
from repro.workloads.kernels.fft import Fft
from repro.workloads.kernels.iir import Iir
from repro.workloads.kernels.latnrm import Latnrm
from repro.workloads.kernels.lmsfir import LmsFir
from repro.workloads.kernels.matmul import MatMul


def _kernels():
    return [
        Fft(1024),
        Fft(256),
        Fir(256, 64),
        Fir(32, 1),
        Iir(4, 64),
        Iir(1, 1),
        Latnrm(32, 64),
        Latnrm(8, 1),
        LmsFir(32, 64),
        LmsFir(8, 1),
        MatMul(10),
        MatMul(4),
    ]


def _applications():
    from repro.workloads.apps.adpcm import Adpcm
    from repro.workloads.apps.lpc import Lpc
    from repro.workloads.apps.spectral import Spectral
    from repro.workloads.apps.edge_detect import EdgeDetect
    from repro.workloads.apps.compress import Compress
    from repro.workloads.apps.histogram import Histogram
    from repro.workloads.apps.v32encode import V32Encode
    from repro.workloads.apps.g721 import G721
    from repro.workloads.apps.trellis import Trellis

    return [
        Adpcm(),
        Lpc(),
        Spectral(),
        EdgeDetect(),
        Compress(),
        Histogram(),
        V32Encode(),
        G721("ml", "encode"),
        G721("ml", "decode"),
        G721("wf", "encode"),
        Trellis(),
    ]


class _LazyTable(dict):
    """A name->workload table whose entries build on first access."""

    def __init__(self, factory):
        super().__init__()
        self._factory = factory
        self._built = False

    def _ensure(self):
        if not self._built:
            self._built = True
            for workload in self._factory():
                super().__setitem__(workload.name, workload)

    def __getitem__(self, key):
        self._ensure()
        return super().__getitem__(key)

    def __iter__(self):
        self._ensure()
        return super().__iter__()

    def __len__(self):
        self._ensure()
        return super().__len__()

    def __contains__(self, key):
        self._ensure()
        return super().__contains__(key)

    def keys(self):
        self._ensure()
        return super().keys()

    def values(self):
        self._ensure()
        return super().values()

    def items(self):
        self._ensure()
        return super().items()


#: Paper Figure 7 order: k1..k12.
KERNELS = _LazyTable(_kernels)

#: Paper Figure 8 order: a1..a11.
APPLICATIONS = _LazyTable(_applications)


def all_workloads():
    """Every workload, kernels first (paper Tables 1 and 2)."""
    table = {}
    table.update(KERNELS.items())
    table.update(APPLICATIONS.items())
    return table


def get_workload(name):
    table = all_workloads()
    if name not in table:
        raise KeyError(
            "unknown workload %r (have: %s)" % (name, ", ".join(sorted(table)))
        )
    return table[name]
