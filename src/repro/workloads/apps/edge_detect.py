"""Edge detection by 2D convolution with Sobel operators.

For every interior pixel, the 3x3 neighbourhood is convolved with both
Sobel masks in one pass over a kernel-offset table; the gradient magnitude
(|gx| + |gy|) is thresholded into a binary edge map.  Each inner-loop
iteration pairs an offset-table load with the two mask loads, while the
image load itself sits behind the offset computation — giving the modest
application-level gains the paper reports (~15%).
"""

import numpy as np

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload

HEIGHT = 32
WIDTH = 32
THRESHOLD = 260.0

SOBEL_X = [-1.0, 0.0, 1.0, -2.0, 0.0, 2.0, -1.0, 0.0, 1.0]
SOBEL_Y = [-1.0, -2.0, -1.0, 0.0, 0.0, 0.0, 1.0, 2.0, 1.0]


def edge_reference(image):
    out = np.zeros((HEIGHT, WIDTH), dtype=np.int64)
    offsets = [
        (di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1)
    ]
    for i in range(1, HEIGHT - 1):
        for j in range(1, WIDTH - 1):
            gx = 0.0
            gy = 0.0
            for k, (di, dj) in enumerate(offsets):
                pixel = float(image[i + di][j + dj])
                gx += pixel * SOBEL_X[k]
                gy += pixel * SOBEL_Y[k]
            if abs(gx) + abs(gy) > THRESHOLD:
                out[i][j] = 1
    return out.reshape(-1).tolist()


class EdgeDetect(Workload):
    name = "edge_detect"
    category = "application"

    def __init__(self):
        self._image = data.image(HEIGHT, WIDTH, seed=77)

    def build(self):
        pb = ProgramBuilder(self.name)
        img_flat = [float(v) for v in self._image.reshape(-1)]
        img = pb.global_array("img", HEIGHT * WIDTH, float, init=img_flat)
        out = pb.global_array("out", HEIGHT * WIDTH, int)
        koff = pb.global_array(
            "koff",
            9,
            int,
            init=[di * WIDTH + dj for di in (-1, 0, 1) for dj in (-1, 0, 1)],
        )
        gxk = pb.global_array("gxk", 9, float, init=SOBEL_X)
        gyk = pb.global_array("gyk", 9, float, init=SOBEL_Y)

        with pb.function("main") as f:
            with f.for_range(1, HEIGHT - 1, name="i") as i:
                center = f.index_var("center")
                f.assign(center, i * WIDTH + 1)
                with f.for_range(1, WIDTH - 1, name="j") as j:
                    gx = f.float_var("gx")
                    gy = f.float_var("gy")
                    f.assign(gx, 0.0)
                    f.assign(gy, 0.0)
                    with f.loop(9, name="k") as k:
                        o = f.index_var("o")
                        f.assign(o, koff[k])
                        p = f.index_var("p")
                        f.assign(p, center + o)
                        pixel = f.float_var("pixel")
                        f.assign(pixel, img[p])
                        f.assign(gx, gx + pixel * gxk[k])
                        f.assign(gy, gy + pixel * gyk[k])
                    mag = f.float_var("mag")
                    f.assign(mag, abs(gx) + abs(gy))
                    edge = f.int_var("edge")
                    f.assign(edge, 0)
                    with f.if_(mag > THRESHOLD):
                        f.assign(edge, 1)
                    f.assign(out[center], edge)
                    f.assign(center, center + 1)
        return pb.build()

    def expected(self):
        return {"out": edge_reference(self._image)}
