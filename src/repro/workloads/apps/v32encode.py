"""V.32 modem encoder: differential + convolutional (trellis) encoding
plus 32-point constellation mapping.

Each symbol consumes four scrambled bits: the first dibit is
differentially encoded through a lookup table, a systematic convolutional
encoder adds the redundant bit, and the resulting 5-bit label selects a
constellation point from an *interleaved* I/Q table — two loads from the
same array that can only pair if the table is duplicated, which is why
the paper finds partial duplication marginally ahead of CB partitioning
for this program.
"""

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload

SYMBOLS = 192

#: Differential dibit encoding (V.32 Table 1): prev*4 + cur -> new dibit.
DIFF_TABLE = [
    0, 1, 2, 3,
    1, 2, 3, 0,
    2, 3, 0, 1,
    3, 0, 1, 2,
]


def _constellation():
    """Interleaved (I, Q) pairs for the 32 labels."""
    points = []
    for label in range(32):
        i_level = (label & 0x3) * 2 - 3 + ((label >> 4) & 1)
        q_level = ((label >> 2) & 0x3) * 2 - 3 - ((label >> 4) & 1)
        points.append(float(i_level))
        points.append(float(q_level))
    return points


CONSTELLATION = _constellation()


def encode_reference(bits):
    prev = 0
    s1 = s2 = s3 = 0
    out_re = []
    out_im = []
    for n in range(SYMBOLS):
        q1 = bits[4 * n]
        q2 = bits[4 * n + 1]
        q3 = bits[4 * n + 2]
        q4 = bits[4 * n + 3]
        dibit = q1 * 2 + q2
        y12 = DIFF_TABLE[prev * 4 + dibit]
        prev = y12
        y1 = (y12 >> 1) & 1
        y2 = y12 & 1
        # Systematic convolutional encoder (8-state).
        y0 = s3
        ns1 = s2 ^ y1
        ns2 = s1 ^ y2 ^ s3
        ns3 = s1 ^ y1 ^ y2
        s1, s2, s3 = ns1, ns2, ns3
        label = (y0 << 4) | (y1 << 3) | (y2 << 2) | (q3 << 1) | q4
        out_re.append(CONSTELLATION[2 * label])
        out_im.append(CONSTELLATION[2 * label + 1])
    return out_re, out_im


class V32Encode(Workload):
    name = "V32encode"
    category = "application"

    def __init__(self):
        self._bits = data.bits(4 * SYMBOLS, seed=37)

    def build(self):
        pb = ProgramBuilder(self.name)
        # The serial bit stream arrives packed four bits per word (one
        # symbol per word), as a modem's framing buffer would hold it.
        nibbles = [
            (self._bits[4 * n] << 3)
            | (self._bits[4 * n + 1] << 2)
            | (self._bits[4 * n + 2] << 1)
            | self._bits[4 * n + 3]
            for n in range(SYMBOLS)
        ]
        nib = pb.global_array("nib", SYMBOLS, int, init=nibbles)
        diff = pb.global_array("diff", 16, int, init=DIFF_TABLE)
        cpts = pb.global_array("cpts", 64, float, init=CONSTELLATION)
        sym_re = pb.global_array("sym_re", SYMBOLS, float)
        sym_im = pb.global_array("sym_im", SYMBOLS, float)

        with pb.function("main") as f:
            prev = f.index_var("prev")
            s1 = f.int_var("s1")
            s2 = f.int_var("s2")
            s3 = f.int_var("s3")
            f.assign(prev, 0)
            f.assign(s1, 0)
            f.assign(s2, 0)
            f.assign(s3, 0)
            with f.loop(SYMBOLS, name="n") as n:
                word = f.int_var("word")
                f.assign(word, nib[n])
                q1 = f.int_var("q1")
                q2 = f.int_var("q2")
                q3 = f.int_var("q3")
                q4 = f.int_var("q4")
                f.assign(q1, (word >> 3) & 1)
                f.assign(q2, (word >> 2) & 1)
                f.assign(q3, (word >> 1) & 1)
                f.assign(q4, word & 1)
                dibit = f.index_var("dibit")
                f.assign(dibit, q1 * 2 + q2)
                y12 = f.int_var("y12")
                f.assign(y12, diff[prev * 4 + dibit])
                f.assign(prev, y12)
                y1 = f.int_var("y1")
                y2 = f.int_var("y2")
                f.assign(y1, (y12 >> 1) & 1)
                f.assign(y2, y12 & 1)
                y0 = f.int_var("y0")
                f.assign(y0, s3)
                ns1 = f.int_var("ns1")
                ns2 = f.int_var("ns2")
                ns3 = f.int_var("ns3")
                f.assign(ns1, s2 ^ y1)
                f.assign(ns2, s1 ^ y2 ^ s3)
                f.assign(ns3, s1 ^ y1 ^ y2)
                f.assign(s1, ns1)
                f.assign(s2, ns2)
                f.assign(s3, ns3)
                label = f.index_var("label")
                f.assign(
                    label,
                    (y0 << 4) | (y1 << 3) | (y2 << 2) | (q3 << 1) | q4,
                )
                pt = f.index_var("pt")
                f.assign(pt, label * 2)
                f.assign(sym_re[n], cpts[pt])
                f.assign(sym_im[n], cpts[pt + 1])
        return pb.build()

    def expected(self):
        out_re, out_im = encode_reference(self._bits)
        return {"sym_re": out_re, "sym_im": out_im}
