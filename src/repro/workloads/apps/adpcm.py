"""ADPCM speech encoder (IMA/DVI-style adaptive differential PCM).

Per-sample work is a chain of scalar decisions: predict, compute the
difference, quantize it against the adaptive step size, reconstruct, and
adapt.  The two tables (step sizes, index adaptation) are consulted
through data-dependent indices, so memory operations rarely pair — the
paper measures only a ~3% gain even with ideal memory.
"""

from repro.frontend import ProgramBuilder
from repro.frontend.expressions import imax as _imax
from repro.frontend.expressions import imin as _imin
from repro.workloads import data
from repro.workloads.base import Workload

STEP_TABLE = [
    7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31, 34, 37,
    41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130, 143, 157, 173,
    190, 209, 230, 253, 279, 307, 337, 371, 408, 449, 494, 544, 598, 658,
    724, 796, 876, 963, 1060, 1166, 1282, 1411, 1552, 1707, 1878, 2066,
    2272, 2499, 2749, 3024, 3327, 3660, 4026, 4428, 4871, 5358, 5894,
    6484, 7132, 7845, 8630, 9493, 10442, 11487, 12635, 13899, 15289,
    16818, 18500, 20350, 22385, 24623, 27086, 29794, 32767,
]

INDEX_TABLE = [-1, -1, -1, -1, 2, 4, 6, 8, -1, -1, -1, -1, 2, 4, 6, 8]


def encode_reference(samples):
    """Reference IMA-ADPCM encoder (mirrors the DSL program exactly)."""
    predicted = 0
    index = 0
    codes = []
    for sample in samples:
        step = STEP_TABLE[index]
        diff = sample - predicted
        code = 8 if diff < 0 else 0
        if diff < 0:
            diff = -diff
        delta = 0
        vpdiff = step >> 3
        if diff >= step:
            code |= 4
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            code |= 2
            diff -= step
            vpdiff += step
        step >>= 1
        if diff >= step:
            code |= 1
            vpdiff += step
        if code & 8:
            predicted -= vpdiff
        else:
            predicted += vpdiff
        if predicted > 32767:
            predicted = 32767
        elif predicted < -32768:
            predicted = -32768
        index += INDEX_TABLE[code]
        if index < 0:
            index = 0
        elif index > 88:
            index = 88
        codes.append(code)
    return codes, predicted


class Adpcm(Workload):
    name = "adpcm"
    category = "application"

    def __init__(self, samples=256):
        self.samples = samples
        raw = data.speech(samples, seed=41)
        self._input = [int(v * 12000) for v in raw]

    def build(self):
        pb = ProgramBuilder(self.name)
        x = pb.global_array("x", self.samples, int, init=self._input)
        codes = pb.global_array("codes", self.samples, int)
        final = pb.global_scalar("final_predicted", int)
        step_table = pb.global_array("step_table", 89, int, init=STEP_TABLE)
        index_table = pb.global_array("index_table", 16, int, init=INDEX_TABLE)

        with pb.function("main") as f:
            # Branchless fixed-point encoder, the standard DSP style:
            # quantizer decisions become compare/multiply/accumulate
            # chains and the clamps use the MIN/MAX units, so every
            # sample is one straight-line block.
            predicted = f.int_var("predicted")
            index = f.index_var("index")
            f.assign(predicted, 0)
            f.assign(index, 0)
            with f.loop(self.samples, name="n") as n:
                step = f.int_var("step")
                f.assign(step, step_table[index])
                sample = f.int_var("sample")
                f.assign(sample, x[n])
                raw = f.int_var("raw")
                f.assign(raw, sample - predicted)
                sign = f.int_var("sign")  # 8 when negative, else 0
                f.assign(sign, (raw < 0) << 3)
                diff = f.int_var("diff")
                f.assign(diff, abs(raw))
                vpdiff = f.int_var("vpdiff")
                f.assign(vpdiff, step >> 3)

                bit4 = f.int_var("bit4")
                f.assign(bit4, diff >= step)
                f.assign(diff, diff - bit4 * step)
                f.assign(vpdiff, vpdiff + bit4 * step)
                f.assign(step, step >> 1)
                bit2 = f.int_var("bit2")
                f.assign(bit2, diff >= step)
                f.assign(diff, diff - bit2 * step)
                f.assign(vpdiff, vpdiff + bit2 * step)
                f.assign(step, step >> 1)
                bit1 = f.int_var("bit1")
                f.assign(bit1, diff >= step)
                f.assign(vpdiff, vpdiff + bit1 * step)

                code = f.int_var("code")
                f.assign(
                    code, sign | (bit4 << 2) | (bit2 << 1) | bit1
                )
                # predicted +/- vpdiff without a branch: sign is 0 or 8.
                direction = f.int_var("direction")
                f.assign(direction, 1 - (sign >> 2))  # +1 or -1
                f.assign(predicted, predicted + direction * vpdiff)
                f.assign(predicted, _imin(predicted, 32767))
                f.assign(predicted, _imax(predicted, -32768))
                f.assign(codes[n], code)
                adj = f.int_var("adj")
                f.assign(adj, index_table[code])
                next_index = f.int_var("next_index")
                f.assign(next_index, _imax(_imin(adj + index, 88), 0))
                f.assign(index, next_index)
            f.assign(final[0], predicted)
        return pb.build()

    def expected(self):
        codes, predicted = encode_reference(self._input)
        return {"codes": codes, "final_predicted": predicted}
