"""Image enhancement by histogram equalization.

Three passes: build the intensity histogram (``hist[img[i]]++``), turn it
into a scaled cumulative lookup table, and remap every pixel through the
table.  Every memory access feeds the next one (the pixel value *is* the
next address), so there is no memory parallelism for any allocation to
exploit — the paper reports exactly 0% gain even with dual-ported memory,
and this program is why.
"""

import numpy as np

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload

HEIGHT = 64
WIDTH = 64
LEVELS = 256
PIXELS = HEIGHT * WIDTH


def histogram_reference(image):
    flat = image.reshape(-1)
    hist = np.bincount(flat, minlength=LEVELS)
    lut = []
    cumulative = 0
    for level in range(LEVELS):
        cumulative += int(hist[level])
        lut.append((cumulative * (LEVELS - 1)) // PIXELS)
    out = [lut[v] for v in flat]
    return [int(h) for h in hist], lut, out


class Histogram(Workload):
    name = "histogram"
    category = "application"

    def __init__(self):
        self._image = data.image(HEIGHT, WIDTH, seed=13)

    def build(self):
        pb = ProgramBuilder(self.name)
        img = pb.global_array(
            "img", PIXELS, int, init=[int(v) for v in self._image.reshape(-1)]
        )
        hist = pb.global_array("hist", LEVELS, int)
        lut = pb.global_array("lut", LEVELS, int)
        out = pb.global_array("out", PIXELS, int)

        with pb.function("main") as f:
            # Pass 1: histogram. The pixel load feeds the bin address.
            with f.loop(PIXELS, name="p") as p:
                level = f.index_var("level")
                f.assign(level, img[p])
                f.assign(hist[level], hist[level] + 1)
            # Pass 2: scaled cumulative distribution as a lookup table.
            cumulative = f.int_var("cum")
            f.assign(cumulative, 0)
            with f.loop(LEVELS, name="l") as l:
                f.assign(cumulative, cumulative + hist[l])
                f.assign(lut[l], (cumulative * (LEVELS - 1)) / PIXELS)
            # Pass 3: remap every pixel through the table.
            with f.loop(PIXELS, name="q") as q:
                level = f.index_var("level2")
                f.assign(level, img[q])
                f.assign(out[q], lut[level])
        return pb.build()

    def expected(self):
        hist, lut, out = histogram_reference(self._image)
        return {"hist": hist, "lut": lut, "out": out}
