"""The 11 DSP applications of paper Table 2.

Unlike the kernels, these are complete programs: control code, table
lookups, multiple processing phases, and function calls surround the hot
loops — which is why the paper's application gains (3-15% for CB) are far
smaller than the kernel gains, and why three of them (lpc, spectral,
V32encode) contain the same-array parallel accesses that motivate partial
data duplication.
"""
