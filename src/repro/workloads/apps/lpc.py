"""LPC speech encoder: windowing, autocorrelation, Levinson-Durbin.

The autocorrelation loop is the paper's Figure 6 verbatim:

    for (n = 1; n < r; n++)
        R[n] += signal[n] * signal[n+m];

Both loads hit the *same* array, so no partitioning can pair them — this
is the application where partial data duplication lifts the gain from ~3%
(CB alone) to ~34%, close to the 36% of ideal dual-ported memory.
"""

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload

FRAME = 160
ORDER = 10


def lpc_reference(signal, window):
    """Mirror of the DSL program in plain Python."""
    ws = [s * w for s, w in zip(signal, window)]
    n = len(ws)
    r = [0.0] * (ORDER + 1)
    for m in range(ORDER + 1):
        acc = 0.0
        for i in range(n - m):
            acc += ws[i] * ws[i + m]
        r[m] = acc
    # Levinson-Durbin
    a = [0.0] * (ORDER + 1)
    tmp = [0.0] * (ORDER + 1)
    k = [0.0] * ORDER
    err = r[0]
    for i in range(1, ORDER + 1):
        acc = r[i]
        for j in range(1, i):
            acc -= a[j] * r[i - j]
        ki = acc / err
        k[i - 1] = ki
        a[i] = ki
        for j in range(1, i):
            tmp[j] = a[j] - ki * a[i - j]
        for j in range(1, i):
            a[j] = tmp[j]
        err = err * (1.0 - ki * ki)
    return r, a, k, err


class Lpc(Workload):
    name = "lpc"
    category = "application"
    rtol = 1e-8
    atol = 1e-8

    def __init__(self):
        self._signal = data.speech(FRAME, seed=29)
        self._window = data.hamming(FRAME)

    def build(self):
        pb = ProgramBuilder(self.name)
        signal = pb.global_array("signal", FRAME, float, init=self._signal)
        window = pb.global_array("window", FRAME, float, init=self._window)
        ws = pb.global_array("ws", FRAME, float)
        r = pb.global_array("R", ORDER + 1, float)
        a = pb.global_array("a", ORDER + 1, float)
        tmp = pb.global_array("tmp", ORDER + 1, float)
        k = pb.global_array("k", ORDER, float)
        err_out = pb.global_scalar("err", float)

        with pb.function("main") as f:
            # Windowing: signal and window pair across the banks.
            with f.loop(FRAME, name="n") as n:
                f.assign(ws[n], signal[n] * window[n])

            # Autocorrelation (paper Figure 6): ws[i] and ws[i+m] are the
            # same array — the duplication case.
            with f.loop(ORDER + 1, name="m") as m:
                acc = f.float_var("acc")
                f.assign(acc, 0.0)
                with f.for_range(0, FRAME - m, name="i") as i:
                    f.assign(acc, acc + ws[i] * ws[i + m])
                f.assign(r[m], acc)

            # Levinson-Durbin recursion.
            errv = f.float_var("errv")
            f.assign(errv, r[0])
            with f.for_range(1, ORDER + 1, name="li") as li:
                acc = f.float_var("lacc")
                f.assign(acc, r[li])
                with f.for_range(1, li, name="j") as j:
                    f.assign(acc, acc - a[j] * r[li - j])
                ki = f.float_var("ki")
                f.assign(ki, acc / errv)
                f.assign(k[li - 1], ki)
                f.assign(a[li], ki)
                with f.for_range(1, li, name="j2") as j2:
                    f.assign(tmp[j2], a[j2] - ki * a[li - j2])
                with f.for_range(1, li, name="j3") as j3:
                    f.assign(a[j3], tmp[j3])
                f.assign(errv, errv * (1.0 - ki * ki))
            f.assign(err_out[0], errv)
        return pb.build()

    def expected(self):
        r, a, k, err = lpc_reference(self._signal, self._window)
        return {"R": r, "a": a, "k": k, "err": err}
