"""Image compression with an 8x8 block Discrete Cosine Transform.

The image is processed in 8x8 blocks: each block is transformed with two
8x8 matrix multiplies (``C . B . C^T``) and quantized against a table.
The DCT runs as a called function (one call per block), exercising the
dual-stack callee save/restore path; its inner products pair cosine-matrix
loads against block loads across the banks.
"""

import math

import numpy as np

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload

SIZE = 32
BLOCK = 8
BLOCKS = (SIZE // BLOCK) * (SIZE // BLOCK)

#: JPEG luminance quantization table (standard Annex K).
QUANT = [
    16, 11, 10, 16, 24, 40, 51, 61,
    12, 12, 14, 19, 26, 58, 60, 55,
    14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62,
    18, 22, 37, 56, 68, 109, 103, 77,
    24, 35, 55, 64, 81, 104, 113, 92,
    49, 64, 78, 87, 103, 121, 120, 101,
    72, 92, 95, 98, 112, 100, 103, 99,
]


def dct_matrix():
    c = []
    for i in range(BLOCK):
        row = []
        scale = math.sqrt(1.0 / BLOCK) if i == 0 else math.sqrt(2.0 / BLOCK)
        for j in range(BLOCK):
            row.append(scale * math.cos((2 * j + 1) * i * math.pi / (2 * BLOCK)))
        c.extend(row)
    return c


def compress_reference(image):
    c = np.asarray(dct_matrix()).reshape(BLOCK, BLOCK)
    q = np.asarray(QUANT, dtype=float).reshape(BLOCK, BLOCK)
    out = []
    for bi in range(SIZE // BLOCK):
        for bj in range(SIZE // BLOCK):
            block = image[
                bi * BLOCK : (bi + 1) * BLOCK, bj * BLOCK : (bj + 1) * BLOCK
            ].astype(float) - 128.0
            coef = c @ block @ c.T
            scaled = coef / q
            quantized = np.where(
                scaled >= 0,
                np.floor(scaled + 0.5),
                -np.floor(0.5 - scaled),
            ).astype(np.int64)
            out.extend(quantized.reshape(-1).tolist())
    return out


class Compress(Workload):
    name = "compress"
    category = "application"

    def __init__(self):
        self._image = data.image(SIZE, SIZE, seed=91)

    def build(self):
        pb = ProgramBuilder(self.name)
        img_flat = [float(v) for v in self._image.reshape(-1)]
        img = pb.global_array("img", SIZE * SIZE, float, init=img_flat)
        cmat = pb.global_array("cmat", BLOCK * BLOCK, float, init=dct_matrix())
        quant = pb.global_array(
            "quant", BLOCK * BLOCK, float, init=[float(v) for v in QUANT]
        )
        work = pb.global_array("work", BLOCK * BLOCK, float)
        tmp = pb.global_array("tmp", BLOCK * BLOCK, float)
        coef = pb.global_array("coef", BLOCK * BLOCK, float)
        qout = pb.global_array("qout", SIZE * SIZE, int)

        # tmp = cmat . work ; coef = tmp . cmat^T  (row-major 8x8 matmuls)
        with pb.function("dct_block") as f:
            with f.loop(BLOCK, name="i") as i:
                row = f.index_var("row")
                f.assign(row, i * BLOCK)
                with f.loop(BLOCK, name="j") as j:
                    acc = f.float_var("acc")
                    f.assign(acc, 0.0)
                    col = f.index_var("col")
                    f.assign(col, j)
                    with f.loop(BLOCK, name="k") as k:
                        f.assign(acc, acc + cmat[row + k] * work[col])
                        f.assign(col, col + BLOCK)
                    f.assign(tmp[row + j], acc)
            with f.loop(BLOCK, name="i2") as i2:
                row = f.index_var("row2")
                f.assign(row, i2 * BLOCK)
                with f.loop(BLOCK, name="j2") as j2:
                    acc = f.float_var("acc2")
                    f.assign(acc, 0.0)
                    crow = f.index_var("crow")
                    f.assign(crow, j2 * BLOCK)
                    with f.loop(BLOCK, name="k2") as k2:
                        # coef[i][j] = sum_k tmp[i][k] * C[j][k]
                        f.assign(acc, acc + tmp[row + k2] * cmat[crow + k2])
                    f.assign(coef[row + j2], acc)
        dct = pb.get("dct_block")

        with pb.function("main") as f:
            nblocks_side = SIZE // BLOCK
            with f.loop(nblocks_side, name="bi") as bi:
                with f.loop(nblocks_side, name="bj") as bj:
                    origin = f.index_var("origin")
                    f.assign(origin, bi * (BLOCK * SIZE) + bj * BLOCK)
                    # Gather the block, centering samples around zero.
                    with f.loop(BLOCK, name="gi") as gi:
                        src = f.index_var("src")
                        dst = f.index_var("dst")
                        f.assign(src, origin + gi * SIZE)
                        f.assign(dst, gi * BLOCK)
                        with f.loop(BLOCK, name="gj") as gj:
                            f.assign(work[dst + gj], img[src + gj] - 128.0)
                    f.call(dct)
                    # Quantize: round(coef / quant) half away from zero.
                    with f.loop(BLOCK * BLOCK, name="qi") as qi:
                        scaled = f.float_var("scaled")
                        f.assign(scaled, coef[qi] / quant[qi])
                        q = f.int_var("q")
                        # FTOI truncates toward zero, so trunc(x + 0.5)
                        # rounds half away from zero on each sign branch.
                        with f.if_(scaled >= 0.0):
                            f.assign(q, scaled + 0.5)
                        with f.else_():
                            f.assign(q, -(0.5 - scaled))
                        f.assign(qout[origin + qi], q)
        return pb.build()

    def expected(self):
        return {"qout": self._reference_layout()}

    def _reference_layout(self):
        """Reference output rearranged to the program's storage layout."""
        flat = [0] * (SIZE * SIZE)
        values = compress_reference(self._image)
        index = 0
        for bi in range(SIZE // BLOCK):
            for bj in range(SIZE // BLOCK):
                origin = bi * BLOCK * SIZE + bj * BLOCK
                for qi in range(BLOCK * BLOCK):
                    flat[origin + qi] = values[index]
                    index += 1
        return flat
