"""Trellis (Viterbi) decoder for a rate-1/2, 4-state convolutional code.

The add-compare-select recursion keeps the four path metrics in scalar
registers; per received symbol it loads the two channel bit streams (two
arrays — a pairable access) and stores one survivor decision per state
into four survivor arrays.  Traceback then walks the survivors backwards
through data-dependent loads.  Gains are small (~5% in the paper): the
ACS network is compare/select-bound, and the traceback is fully
serialized.
"""

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload

SYMBOLS = 192

#: Code generators for the (5, 7) rate-1/2 convolutional code, K=3.
#: state = (b_{n-1}, b_{n-2}); output bits for input b_n.
def _encode(bits):
    s1 = s2 = 0
    out0 = []
    out1 = []
    for b in bits:
        out0.append(b ^ s2)          # 101
        out1.append(b ^ s1 ^ s2)     # 111
        s2 = s1
        s1 = b
    return out0, out1


#: next_state[state][input] and output bits out0/out1[state][input]
def _tables():
    next_state = [[0] * 2 for _ in range(4)]
    o0 = [[0] * 2 for _ in range(4)]
    o1 = [[0] * 2 for _ in range(4)]
    for state in range(4):
        s1 = (state >> 1) & 1
        s2 = state & 1
        for b in (0, 1):
            o0[state][b] = b ^ s2
            o1[state][b] = b ^ s1 ^ s2
            next_state[state][b] = ((b << 1) | s1) & 3
    return next_state, o0, o1


def viterbi_reference(r0, r1):
    next_state, o0, o1 = _tables()
    # predecessors[s] = [(prev_state, input_bit), ...]
    preds = [[] for _ in range(4)]
    for state in range(4):
        for b in (0, 1):
            preds[next_state[state][b]].append((state, b))
    big = 1 << 20
    metric = [0, big, big, big]
    survivors = []
    for n in range(len(r0)):
        new_metric = [0] * 4
        decision = [0] * 4
        for s in range(4):
            best = None
            best_pred = 0
            for pred, b in preds[s]:
                cost = (
                    metric[pred]
                    + (r0[n] ^ o0[pred][b])
                    + (r1[n] ^ o1[pred][b])
                )
                if best is None or cost < best:
                    best = cost
                    best_pred = pred
            new_metric[s] = best
            decision[s] = best_pred
        metric = new_metric
        survivors.append(decision)
    # Traceback from the best final state.
    state = min(range(4), key=lambda s: metric[s])
    decoded = [0] * len(r0)
    for n in range(len(r0) - 1, -1, -1):
        prev = survivors[n][state]
        decoded[n] = (state >> 1) & 1
        state = prev
    return decoded, metric


class Trellis(Workload):
    name = "trellis"
    category = "application"

    def __init__(self):
        self._bits = data.bits(SYMBOLS, seed=71)
        r0, r1 = _encode(self._bits)
        # Inject a few channel errors so the decoder does real work.
        noise = data.rng(72).choice(SYMBOLS, size=6, replace=False)
        for position in noise:
            r0[int(position)] ^= 1
        self._r0 = r0
        self._r1 = r1

    def build(self):
        next_state, o0, o1 = _tables()
        preds = [[] for _ in range(4)]
        for state in range(4):
            for b in (0, 1):
                preds[next_state[state][b]].append((state, b))
        big = 1 << 20

        pb = ProgramBuilder(self.name)
        r0 = pb.global_array("r0", SYMBOLS, int, init=self._r0)
        r1 = pb.global_array("r1", SYMBOLS, int, init=self._r1)
        sv = [pb.global_array("sv%d" % s, SYMBOLS, int) for s in range(4)]
        decoded = pb.global_array("decoded", SYMBOLS, int)
        final_metric = pb.global_array("final_metric", 4, int)

        with pb.function("main") as f:
            # Path metrics live in memory as individual static variables
            # (as a C decoder would keep them), so every add-compare-select
            # reads two *distinct* symbols that the allocation pass can
            # split across the banks — the dual-bank Viterbi butterfly.
            met = [pb.global_scalar("met%d" % s, int) for s in range(4)]
            nm = [pb.global_scalar("nm%d" % s, int) for s in range(4)]

            def metric_ref(state):
                return met[state][0]

            def new_metric_ref(state):
                return nm[state][0]

            f.assign(met[0][0], 0)
            for s in range(1, 4):
                f.assign(met[s][0], big)

            def acs_step(n_expr, src_ref, dst_ref):
                """One add-compare-select stage reading metrics through
                *src_ref* and writing them through *dst_ref*."""
                c0 = f.int_var("c0")
                c1 = f.int_var("c1")
                f.assign(c0, r0[n_expr])
                f.assign(c1, r1[n_expr])
                for s in range(4):
                    (p0, b0), (p1, b1) = preds[s]
                    cost0 = f.int_var()
                    f.assign(
                        cost0,
                        src_ref(p0) + (c0 ^ o0[p0][b0]) + (c1 ^ o1[p0][b0]),
                    )
                    cost1 = f.int_var()
                    f.assign(
                        cost1,
                        src_ref(p1) + (c0 ^ o0[p1][b1]) + (c1 ^ o1[p1][b1]),
                    )
                    best_cost = f.int_var()
                    f.assign(best_cost, cost0)
                    decision = f.int_var()
                    f.assign(decision, p0)
                    with f.if_(cost1 < cost0):
                        f.assign(best_cost, cost1)
                        f.assign(decision, p1)
                    f.assign(dst_ref(s), best_cost)
                    f.assign(sv[s][n_expr], decision)

            with f.loop(SYMBOLS, name="n") as n:
                acs_step(n, metric_ref, new_metric_ref)
                for s in range(4):
                    f.assign(metric_ref(s), new_metric_ref(s))

            # Read each final metric once, publish it, and find the best
            # final state.
            finals = [f.int_var("fm%d" % s) for s in range(4)]
            for s in range(4):
                f.assign(finals[s], metric_ref(s))
            for s in range(4):
                f.assign(final_metric[s], finals[s])
            best_state = f.index_var("best")
            best_metric = f.int_var("bestm")
            f.assign(best_state, 0)
            f.assign(best_metric, finals[0])
            for s in range(1, 4):
                with f.if_(finals[s] < best_metric):
                    f.assign(best_metric, finals[s])
                    f.assign(best_state, s)

            # Traceback: survivor loads feed the next state (serialized).
            state = best_state
            pos = f.index_var("pos")
            f.assign(pos, SYMBOLS - 1)
            with f.loop(SYMBOLS, name="tb"):
                bit = f.int_var("bit")
                f.assign(bit, (state >> 1) & 1)
                f.assign(decoded[pos], bit)
                prev = f.index_var("prev")
                # survivors are split across four arrays: pick by state.
                with f.if_(state == 0):
                    f.assign(prev, sv[0][pos])
                with f.else_():
                    with f.if_(state == 1):
                        f.assign(prev, sv[1][pos])
                    with f.else_():
                        with f.if_(state == 2):
                            f.assign(prev, sv[2][pos])
                        with f.else_():
                            f.assign(prev, sv[3][pos])
                f.assign(state, prev)
                f.assign(pos, pos - 1)
        return pb.build()

    def expected(self):
        decoded, metric = viterbi_reference(self._r0, self._r1)
        return {"decoded": decoded, "final_metric": metric}
