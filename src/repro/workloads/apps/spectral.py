"""Spectral analysis by periodogram averaging (Welch's method).

Frames of the input are windowed, transformed with an in-place radix-2
FFT, and their power spectra accumulated.  The FFT butterflies access the
real (and imaginary) arrays at two indices simultaneously, so ``re`` and
``im`` are marked for duplication — but unlike lpc, the hot loop *stores*
into the duplicated arrays (four stores per butterfly), so the integrity
stores offset the duplication win: the paper measures Dup (1.06) *below*
CB partitioning alone (1.09).
"""

import numpy as np

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload

FFT_SIZE = 64
FRAMES = 6
BINS = FFT_SIZE // 2 + 1


def spectral_reference(signal, window):
    psd = np.zeros(BINS)
    for frame in range(FRAMES):
        chunk = np.asarray(signal[frame * FFT_SIZE : (frame + 1) * FFT_SIZE])
        spectrum = np.fft.fft(chunk * np.asarray(window))
        power = spectrum.real**2 + spectrum.imag**2
        psd += power[:BINS]
    return (psd / FRAMES).tolist()


class Spectral(Workload):
    name = "spectral"
    category = "application"
    rtol = 1e-7
    atol = 1e-7

    def __init__(self):
        self._signal = data.speech(FFT_SIZE * FRAMES, seed=59)
        self._window = data.hamming(FFT_SIZE)

    def build(self):
        n = FFT_SIZE
        stages = n.bit_length() - 1
        pb = ProgramBuilder(self.name)
        signal = pb.global_array("signal", n * FRAMES, float, init=self._signal)
        window = pb.global_array("window", n, float, init=self._window)
        re = pb.global_array("re", n, float)
        im = pb.global_array("im", n, float)
        psd = pb.global_array("psd", BINS, float)
        tw_re, tw_im = data.twiddles(n)
        wre = pb.global_array("wre", n // 2, float, init=tw_re)
        wim = pb.global_array("wim", n // 2, float, init=tw_im)
        brev = pb.global_array("brev", n, int, init=data.bit_reversal_permutation(n))

        with pb.function("fft") as f:
            with f.loop(n, name="i") as i:
                j = f.index_var("j")
                f.assign(j, brev[i])
                with f.if_(i < j):
                    tr = f.float_var()
                    ti = f.float_var()
                    f.assign(tr, re[i])
                    f.assign(ti, im[i])
                    f.assign(re[i], re[j])
                    f.assign(im[i], im[j])
                    f.assign(re[j], tr)
                    f.assign(im[j], ti)
            m = f.index_var("m")
            half = f.index_var("half")
            stride = f.index_var("strd")
            groups = f.index_var("grp")
            f.assign(m, 2)
            f.assign(half, 1)
            f.assign(stride, n // 2)
            f.assign(groups, n // 2)
            with f.loop(stages):
                base = f.index_var("base")
                f.assign(base, 0)
                with f.loop(groups):
                    tw = f.index_var("tw")
                    f.assign(tw, 0)
                    with f.loop(half, name="bj") as bj:
                        top = f.index_var("top")
                        bot = f.index_var("bot")
                        f.assign(top, base + bj)
                        f.assign(bot, top + half)
                        wr = f.float_var("wr")
                        wi = f.float_var("wi")
                        f.assign(wr, wre[tw])
                        f.assign(wi, wim[tw])
                        br = f.float_var()
                        bi = f.float_var()
                        f.assign(br, re[bot])
                        f.assign(bi, im[bot])
                        tr = f.float_var("tr")
                        ti = f.float_var("ti")
                        f.assign(tr, wr * br - wi * bi)
                        f.assign(ti, wr * bi + wi * br)
                        ar = f.float_var()
                        ai = f.float_var()
                        f.assign(ar, re[top])
                        f.assign(ai, im[top])
                        f.assign(re[bot], ar - tr)
                        f.assign(im[bot], ai - ti)
                        f.assign(re[top], ar + tr)
                        f.assign(im[top], ai + ti)
                        f.assign(tw, tw + stride)
                    f.assign(base, base + m)
                f.assign(half, m)
                f.assign(m, m * 2)
                f.assign(stride, stride / 2)
                f.assign(groups, groups / 2)
        fft = pb.get("fft")

        with pb.function("main") as f:
            offset = f.index_var("off")
            f.assign(offset, 0)
            with f.loop(FRAMES, name="frame"):
                # Load and window one frame into the FFT work arrays.
                with f.loop(n, name="wn") as wn:
                    f.assign(re[wn], signal[offset + wn] * window[wn])
                    f.assign(im[wn], 0.0)
                f.call(fft)
                # Accumulate the power spectrum over the first n/2+1 bins.
                with f.loop(BINS, name="b") as b:
                    rb = f.float_var("rb")
                    ib = f.float_var("ib")
                    f.assign(rb, re[b])
                    f.assign(ib, im[b])
                    f.assign(psd[b], psd[b] + rb * rb + ib * ib)
                f.assign(offset, offset + n)
            scale = f.float_var("scale")
            f.assign(scale, 1.0 / FRAMES)
            with f.loop(BINS, name="s") as s:
                f.assign(psd[s], psd[s] * scale)
        return pb.build()

    def expected(self):
        return {"psd": spectral_reference(self._signal, self._window)}
