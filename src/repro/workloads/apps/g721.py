"""CCITT G.721-style 32 kbit/s ADPCM codec, in three implementations.

Like the paper, we carry three variants: ``G721MLencode`` and
``G721MLdecode`` (a floating-point implementation) and ``G721WFencode``
(an integer, shift-based implementation of the same algorithm).  The
codec is an adaptive quantizer over the prediction error of a two-pole /
six-zero adaptive predictor.

All predictor state lives in scalar variables (registers), exactly as an
optimizing C compiler would allocate it; the only array traffic is the
sample stream, the code stream, and data-dependent quantizer-table
lookups.  Consequently there is *no* exploitable memory parallelism:
the paper reports a 1.00 performance ratio for these three programs under
every configuration — including ideal dual-ported memory — and a large
cost increase (1.70) under full duplication.
"""

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload

SAMPLES = 224
ORDER_ZEROS = 6

#: Quantizer decision thresholds and reconstruction levels (in units of
#: the adaptive step), plus the step-size multipliers.
THRESH = [0.25, 0.75, 1.25, 1.75, 2.25, 2.75, 3.25]
RECON = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5]
MULT = [0.92, 0.96, 1.0, 1.04, 1.12, 1.28, 1.55, 1.9]
STEP_MIN = 4.0
STEP_MAX = 2048.0
LEAK = 0.996
GAIN_B = 0.008
GAIN_A = 0.006

SCALE = 256  # fixed-point scale for the WF (integer) variant


class _MlState:
    def __init__(self):
        self.b = [0.0] * ORDER_ZEROS
        self.dq = [0.0] * ORDER_ZEROS
        self.a1 = 0.0
        self.a2 = 0.0
        self.sr1 = 0.0
        self.sr2 = 0.0
        self.step = 32.0


def _ml_sign(v):
    return 1.0 if v >= 0 else -1.0


def ml_encode_step(state, sample):
    sez = sum(state.b[i] * state.dq[i] for i in range(ORDER_ZEROS))
    se = state.a1 * state.sr1 + state.a2 * state.sr2 + sez
    d = sample - se
    magnitude = abs(d)
    level = 0
    for i in range(7):
        if magnitude >= THRESH[i] * state.step:
            level = i + 1
    code = level if d >= 0 else level + 8
    ml_decode_update(state, code)
    return code


def ml_decode_update(state, code):
    """Shared state update (encoder and decoder run it identically)."""
    level = code & 7
    sign = -1.0 if code & 8 else 1.0
    sez = sum(state.b[i] * state.dq[i] for i in range(ORDER_ZEROS))
    se = state.a1 * state.sr1 + state.a2 * state.sr2 + sez
    dq = sign * RECON[level] * state.step
    sr = se + dq
    # Step-size adaptation.
    step = state.step * MULT[level]
    if step < STEP_MIN:
        step = STEP_MIN
    elif step > STEP_MAX:
        step = STEP_MAX
    state.step = step
    # Sign-sign LMS adaptation of the zeros (with leakage).
    sdq = _ml_sign(dq) if dq != 0.0 else 0.0
    for i in range(ORDER_ZEROS):
        sdqi = _ml_sign(state.dq[i]) if state.dq[i] != 0.0 else 0.0
        state.b[i] = state.b[i] * LEAK + GAIN_B * sdq * sdqi
    # Pole adaptation from the reconstructed-signal trend.
    p = sr - state.sr1
    p1 = state.sr1 - state.sr2
    state.a1 = state.a1 * LEAK + GAIN_A * _ml_sign(p) * _ml_sign(p1)
    if state.a1 > 0.9:
        state.a1 = 0.9
    elif state.a1 < -0.9:
        state.a1 = -0.9
    state.a2 = state.a2 * LEAK
    # Delay lines.
    for i in range(ORDER_ZEROS - 1, 0, -1):
        state.dq[i] = state.dq[i - 1]
    state.dq[0] = dq
    state.sr2 = state.sr1
    state.sr1 = sr
    return sr


def ml_encode_reference(samples):
    state = _MlState()
    return [ml_encode_step(state, s) for s in samples]


def ml_decode_reference(codes):
    state = _MlState()
    return [ml_decode_update(state, c) for c in codes]


def _tdiv(a, b):
    """C-style truncating division (matches the machine's DIV opcode)."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def wf_encode_reference(samples):
    """Integer (fixed-point) variant: products become shifts and scaled
    integer multiplies; the quantizer walks integer thresholds."""
    b = [0] * ORDER_ZEROS
    dq = [0] * ORDER_ZEROS
    a1 = a2 = 0
    sr1 = sr2 = 0
    step = 32 * SCALE
    codes = []
    ith = [int(t * SCALE) for t in THRESH]
    irc = [int(r * SCALE) for r in RECON]
    imu = [int(m * SCALE) for m in MULT]
    for sample in samples:
        sez = 0
        for i in range(ORDER_ZEROS):
            sez += _tdiv(b[i] * dq[i], SCALE)
        se = _tdiv(a1 * sr1, SCALE) + _tdiv(a2 * sr2, SCALE) + sez
        d = sample * SCALE - se
        mag = d if d >= 0 else -d
        level = 0
        for i in range(7):
            if mag >= _tdiv(_tdiv(ith[i] * step, SCALE), SCALE):
                level = i + 1
        code = level if d >= 0 else level + 8
        dqv = _tdiv(_tdiv(irc[level] * step, SCALE), SCALE)
        if code & 8:
            dqv = -dqv
        sr = se + dqv
        step = _tdiv(step * imu[level], SCALE)
        if step < 4 * SCALE:
            step = 4 * SCALE
        elif step > 2048 * SCALE:
            step = 2048 * SCALE
        sdq = 0 if dqv == 0 else (1 if dqv > 0 else -1)
        for i in range(ORDER_ZEROS):
            sdqi = 0 if dq[i] == 0 else (1 if dq[i] > 0 else -1)
            b[i] = b[i] - (b[i] >> 8) + 2 * sdq * sdqi
        p = sr - sr1
        p1 = sr1 - sr2
        sp = 0 if p == 0 else (1 if p > 0 else -1)
        sp1 = 0 if p1 == 0 else (1 if p1 > 0 else -1)
        a1 = a1 - (a1 >> 8) + 2 * sp * sp1
        if a1 > 230:
            a1 = 230
        elif a1 < -230:
            a1 = -230
        a2 = a2 - (a2 >> 8)
        for i in range(ORDER_ZEROS - 1, 0, -1):
            dq[i] = dq[i - 1]
        dq[0] = dqv
        sr2 = sr1
        sr1 = sr
        codes.append(code)
    return codes


class G721(Workload):
    category = "application"
    rtol = 1e-8
    atol = 1e-8

    def __init__(self, variant, direction):
        if variant not in ("ml", "wf"):
            raise ValueError("variant must be 'ml' or 'wf'")
        if direction not in ("encode", "decode"):
            raise ValueError("direction must be 'encode' or 'decode'")
        if (variant, direction) == ("wf", "decode"):
            raise ValueError("the paper's suite has no WF decoder")
        self.variant = variant
        self.direction = direction
        self.name = "G721%s%s" % (variant.upper(), direction)
        raw = data.speech(SAMPLES, seed=67)
        self._samples = [int(v * 8000) for v in raw]
        if direction == "decode":
            self._codes = ml_encode_reference([float(v) for v in self._samples])

    # ------------------------------------------------------------------
    def build(self):
        if self.variant == "wf":
            return self._build_wf()
        return self._build_ml()

    def _build_ml(self):
        pb = ProgramBuilder(self.name)
        decode = self.direction == "decode"
        if decode:
            codes_in = pb.global_array("codes_in", SAMPLES, int, init=self._codes)
            out = pb.global_array("out", SAMPLES, float)
        else:
            x = pb.global_array(
                "x", SAMPLES, float, init=[float(v) for v in self._samples]
            )
            codes = pb.global_array("codes", SAMPLES, int)
        thresh = pb.global_array("thresh", 7, float, init=THRESH)
        recon = pb.global_array("recon", 8, float, init=RECON)
        mult = pb.global_array("mult", 8, float, init=MULT)

        with pb.function("main") as f:
            b = [f.float_var("b%d" % i) for i in range(ORDER_ZEROS)]
            dq = [f.float_var("dq%d" % i) for i in range(ORDER_ZEROS)]
            for reg in b + dq:
                f.assign(reg, 0.0)
            a1 = f.float_var("a1")
            a2 = f.float_var("a2")
            sr1 = f.float_var("sr1")
            sr2 = f.float_var("sr2")
            step = f.float_var("step")
            for reg in (a1, a2, sr1, sr2):
                f.assign(reg, 0.0)
            f.assign(step, 32.0)

            with f.loop(SAMPLES, name="n") as n:
                sez = f.float_var("sez")
                f.assign(sez, 0.0)
                for i in range(ORDER_ZEROS):
                    f.assign(sez, sez + b[i] * dq[i])
                se = f.float_var("se")
                f.assign(se, a1 * sr1 + a2 * sr2 + sez)

                level = f.index_var("level")
                sign_neg = f.int_var("sneg")
                if decode:
                    code = f.index_var("code")
                    f.assign(code, codes_in[n])
                    f.assign(level, code & 7)
                    f.assign(sign_neg, (code & 8) != 0)
                else:
                    d = f.float_var("d")
                    f.assign(d, x[n] - se)
                    mag = f.float_var("mag")
                    f.assign(mag, abs(d))
                    f.assign(level, 0)
                    with f.loop(7, name="t") as t:
                        with f.if_(mag >= thresh[t] * step):
                            f.assign(level, t + 1)
                    f.assign(sign_neg, d < 0.0)
                    code_v = f.int_var("code_v")
                    f.assign(code_v, level)
                    with f.if_(sign_neg):
                        f.assign(code_v, code_v + 8)
                    f.assign(codes[n], code_v)

                dqv = f.float_var("dqv")
                f.assign(dqv, recon[level] * step)
                with f.if_(sign_neg):
                    f.assign(dqv, -dqv)
                sr = f.float_var("sr")
                f.assign(sr, se + dqv)
                if decode:
                    f.assign(out[n], sr)

                f.assign(step, step * mult[level])
                with f.if_(step < STEP_MIN):
                    f.assign(step, STEP_MIN)
                with f.if_(step > STEP_MAX):
                    f.assign(step, STEP_MAX)

                sdq = f.float_var("sdq")
                f.assign(sdq, 0.0)
                with f.if_(dqv > 0.0):
                    f.assign(sdq, 1.0)
                with f.if_(dqv < 0.0):
                    f.assign(sdq, -1.0)
                for i in range(ORDER_ZEROS):
                    sdqi = f.float_var("sdqi")
                    f.assign(sdqi, 0.0)
                    with f.if_(dq[i] > 0.0):
                        f.assign(sdqi, 1.0)
                    with f.if_(dq[i] < 0.0):
                        f.assign(sdqi, -1.0)
                    f.assign(b[i], b[i] * LEAK + GAIN_B * sdq * sdqi)

                p = f.float_var("p")
                p1 = f.float_var("p1")
                f.assign(p, sr - sr1)
                f.assign(p1, sr1 - sr2)
                sp = f.float_var("sp")
                sp1 = f.float_var("sp1")
                f.assign(sp, 1.0)
                with f.if_(p < 0.0):
                    f.assign(sp, -1.0)
                f.assign(sp1, 1.0)
                with f.if_(p1 < 0.0):
                    f.assign(sp1, -1.0)
                f.assign(a1, a1 * LEAK + GAIN_A * sp * sp1)
                with f.if_(a1 > 0.9):
                    f.assign(a1, 0.9)
                with f.if_(a1 < -0.9):
                    f.assign(a1, -0.9)
                f.assign(a2, a2 * LEAK)

                for i in range(ORDER_ZEROS - 1, 0, -1):
                    f.assign(dq[i], dq[i - 1])
                f.assign(dq[0], dqv)
                f.assign(sr2, sr1)
                f.assign(sr1, sr)
        return pb.build()

    def _build_wf(self):
        pb = ProgramBuilder(self.name)
        x = pb.global_array("x", SAMPLES, int, init=self._samples)
        codes = pb.global_array("codes", SAMPLES, int)
        ith = pb.global_array(
            "ith", 7, int, init=[int(t * SCALE) for t in THRESH]
        )
        irc = pb.global_array(
            "irc", 8, int, init=[int(r * SCALE) for r in RECON]
        )
        imu = pb.global_array(
            "imu", 8, int, init=[int(m * SCALE) for m in MULT]
        )

        with pb.function("main") as f:
            b = [f.int_var("b%d" % i) for i in range(ORDER_ZEROS)]
            dq = [f.int_var("dq%d" % i) for i in range(ORDER_ZEROS)]
            for reg in b + dq:
                f.assign(reg, 0)
            a1 = f.int_var("a1")
            a2 = f.int_var("a2")
            sr1 = f.int_var("sr1")
            sr2 = f.int_var("sr2")
            step = f.int_var("step")
            for reg in (a1, a2, sr1, sr2):
                f.assign(reg, 0)
            f.assign(step, 32 * SCALE)

            with f.loop(SAMPLES, name="n") as n:
                sez = f.int_var("sez")
                f.assign(sez, 0)
                for i in range(ORDER_ZEROS):
                    f.assign(sez, sez + (b[i] * dq[i]) / SCALE)
                se = f.int_var("se")
                f.assign(se, (a1 * sr1) / SCALE + (a2 * sr2) / SCALE + sez)
                d = f.int_var("d")
                f.assign(d, x[n] * SCALE - se)
                mag = f.int_var("mag")
                f.assign(mag, d)
                with f.if_(d < 0):
                    f.assign(mag, -d)
                level = f.index_var("level")
                f.assign(level, 0)
                with f.loop(7, name="t") as t:
                    limit = f.int_var("limit")
                    f.assign(limit, ith[t] * step / SCALE / SCALE)
                    with f.if_(mag >= limit):
                        f.assign(level, t + 1)
                code_v = f.int_var("code_v")
                f.assign(code_v, level)
                with f.if_(d < 0):
                    f.assign(code_v, code_v + 8)
                f.assign(codes[n], code_v)

                dqv = f.int_var("dqv")
                f.assign(dqv, irc[level] * step / SCALE / SCALE)
                with f.if_(d < 0):
                    f.assign(dqv, -dqv)
                sr = f.int_var("sr")
                f.assign(sr, se + dqv)

                f.assign(step, step * imu[level] / SCALE)
                with f.if_(step < 4 * SCALE):
                    f.assign(step, 4 * SCALE)
                with f.if_(step > 2048 * SCALE):
                    f.assign(step, 2048 * SCALE)

                sdq = f.int_var("sdq")
                f.assign(sdq, 0)
                with f.if_(dqv > 0):
                    f.assign(sdq, 1)
                with f.if_(dqv < 0):
                    f.assign(sdq, -1)
                for i in range(ORDER_ZEROS):
                    sdqi = f.int_var("sdqi")
                    f.assign(sdqi, 0)
                    with f.if_(dq[i] > 0):
                        f.assign(sdqi, 1)
                    with f.if_(dq[i] < 0):
                        f.assign(sdqi, -1)
                    f.assign(b[i], b[i] - (b[i] >> 8) + 2 * sdq * sdqi)

                p = f.int_var("p")
                p1 = f.int_var("p1")
                f.assign(p, sr - sr1)
                f.assign(p1, sr1 - sr2)
                sp = f.int_var("sp")
                sp1 = f.int_var("sp1")
                f.assign(sp, 0)
                with f.if_(p > 0):
                    f.assign(sp, 1)
                with f.if_(p < 0):
                    f.assign(sp, -1)
                f.assign(sp1, 0)
                with f.if_(p1 > 0):
                    f.assign(sp1, 1)
                with f.if_(p1 < 0):
                    f.assign(sp1, -1)
                f.assign(a1, a1 - (a1 >> 8) + 2 * sp * sp1)
                with f.if_(a1 > 230):
                    f.assign(a1, 230)
                with f.if_(a1 < -230):
                    f.assign(a1, -230)
                f.assign(a2, a2 - (a2 >> 8))

                for i in range(ORDER_ZEROS - 1, 0, -1):
                    f.assign(dq[i], dq[i - 1])
                f.assign(dq[0], dqv)
                f.assign(sr2, sr1)
                f.assign(sr1, sr)
        return pb.build()

    # ------------------------------------------------------------------
    def expected(self):
        if self.variant == "wf":
            return {"codes": wf_encode_reference(self._samples)}
        if self.direction == "encode":
            return {
                "codes": ml_encode_reference([float(v) for v in self._samples])
            }
        return {"out": ml_decode_reference(self._codes)}
