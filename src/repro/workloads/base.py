"""Workload contract: build a module, predict its outputs, verify a run."""

import math


class Workload:
    """One benchmark: a DSL program plus its reference model.

    Subclasses set ``name`` and ``category`` ('kernel' or 'application'),
    implement :meth:`build` to construct a *fresh* module (compilation
    consumes modules, so the harness calls ``build`` once per
    configuration), and :meth:`expected` to compute the reference outputs
    with ordinary Python/NumPy.
    """

    name = None
    category = None
    #: relative tolerance for float output comparison
    rtol = 1e-9
    #: absolute tolerance floor
    atol = 1e-9

    def build(self):
        """Return a freshly built :class:`repro.ir.Module`."""
        raise NotImplementedError

    def expected(self):
        """Map of global name -> expected contents after a run."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    def verify(self, simulator):
        """Check the simulator's final state against :meth:`expected`.

        Raises ``AssertionError`` naming the first mismatching element.
        """
        for name, want in self.expected().items():
            got = simulator.read_global(name)
            if not isinstance(want, (list, tuple)):
                want = [want]
            if not isinstance(got, (list, tuple)):
                got = [got]
            if len(got) != len(want):
                raise AssertionError(
                    "%s: %s has %d elements, expected %d"
                    % (self.name, name, len(got), len(want))
                )
            for i, (g, w) in enumerate(zip(got, want)):
                if not _close(g, w, self.rtol, self.atol):
                    raise AssertionError(
                        "%s: %s[%d] = %r, expected %r"
                        % (self.name, name, i, g, w)
                    )

    def __repr__(self):
        return "<Workload %s (%s)>" % (self.name, self.category)


def _close(got, want, rtol, atol):
    if isinstance(want, int) and isinstance(got, int):
        return got == want
    return math.isclose(got, want, rel_tol=rtol, abs_tol=atol)
