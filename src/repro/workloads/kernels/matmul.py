"""Matrix multiplication kernels (mult_10_10, mult_4_4).

``C = A x B`` over row-major square matrices; the dot-product inner loop
loads one element of A and one of B per iteration — the canonical
two-array pattern dual banks exist for.
"""

import numpy as np

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload


class MatMul(Workload):
    """``n`` x ``n`` matrix multiply."""

    category = "kernel"
    rtol = 1e-9

    def __init__(self, n):
        self.n = n
        self.name = "mult_%d_%d" % (n, n)
        self._a = data.samples(n * n, seed=n * 3 + 1)
        self._b = data.samples(n * n, seed=n * 3 + 2)

    def build(self):
        pb = ProgramBuilder(self.name)
        n = self.n
        a = pb.global_array("A", n * n, float, init=self._a)
        b = pb.global_array("B", n * n, float, init=self._b)
        c = pb.global_array("C", n * n, float)

        with pb.function("main") as f:
            with f.loop(n, name="i") as i:
                arow = f.index_var("arow")
                f.assign(arow, i * n)
                with f.loop(n, name="j") as j:
                    acc = f.float_var("acc")
                    f.assign(acc, 0.0)
                    bcol = f.index_var("bcol")
                    f.assign(bcol, j)
                    with f.loop(n, name="k") as k:
                        f.assign(acc, acc + a[arow + k] * b[bcol])
                        f.assign(bcol, bcol + n)
                    f.assign(c[arow + j], acc)
        return pb.build()

    def expected(self):
        n = self.n
        a = np.asarray(self._a).reshape(n, n)
        b = np.asarray(self._b).reshape(n, n)
        return {"C": (a @ b).reshape(-1).tolist()}
