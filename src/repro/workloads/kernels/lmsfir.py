"""Least-mean-squares adaptive FIR kernels (lmsfir_32_64, lmsfir_8_1).

Per sample: an inner-product over the delay line (coefficient loads pair
with sample loads), then the coefficient-update loop, which re-reads the
delay line and read-modify-writes the coefficient array.
"""

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload


class LmsFir(Workload):
    """``taps``-tap LMS adaptive FIR over ``samples`` samples."""

    category = "kernel"
    rtol = 1e-9

    def __init__(self, taps, samples, mu=0.02):
        self.taps = taps
        self.samples = samples
        self.mu = mu
        self.name = "lmsfir_%d_%d" % (taps, samples)
        self._input = data.samples(taps + samples - 1, seed=taps * 7 + samples)
        self._desired = data.samples(samples, seed=taps * 7 + samples + 1)

    def build(self):
        pb = ProgramBuilder(self.name)
        taps = self.taps
        h = pb.global_array("h", taps, float)
        x = pb.global_array("x", len(self._input), float, init=self._input)
        d = pb.global_array("d", self.samples, float, init=self._desired)
        y = pb.global_array("y", self.samples, float)
        err = pb.global_array("err", self.samples, float)

        with pb.function("main") as f:
            with f.loop(self.samples, name="n") as n:
                acc = f.float_var("acc")
                f.assign(acc, 0.0)
                with f.loop(taps, name="k") as k:
                    f.assign(acc, acc + h[k] * x[n + k])
                e = f.float_var("e")
                f.assign(e, d[n] - acc)
                step = f.float_var("step")
                f.assign(step, e * self.mu)
                with f.loop(taps, name="u") as u:
                    f.assign(h[u], h[u] + step * x[n + u])
                f.assign(y[n], acc)
                f.assign(err[n], e)
        return pb.build()

    def expected(self):
        h = [0.0] * self.taps
        ys = []
        es = []
        for n in range(self.samples):
            acc = sum(
                h[k] * self._input[n + k] for k in range(self.taps)
            )
            e = self._desired[n] - acc
            step = e * self.mu
            for u in range(self.taps):
                h[u] = h[u] + step * self._input[n + u]
            ys.append(acc)
            es.append(e)
        return {"y": ys, "err": es}
