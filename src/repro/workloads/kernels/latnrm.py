"""Normalized lattice filter kernels (latnrm_32_64, latnrm_8_1).

The DSPstone-style normalized lattice: per sample, a forward pass over the
reflection stages updates the forward residual against the state array,
then the state propagates backward.  Reflection coefficients and state
live in separate arrays, exposing load pairs for the allocation pass.
"""

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload


class Latnrm(Workload):
    """``order``-stage normalized lattice over ``samples`` samples."""

    category = "kernel"

    def __init__(self, order, samples):
        self.order = order
        self.samples = samples
        self.name = "latnrm_%d_%d" % (order, samples)
        rng = data.rng(order * 13 + samples)
        self._k = rng.uniform(-0.7, 0.7, order).tolist()
        self._c = rng.uniform(0.1, 0.9, order).tolist()
        self._input = data.samples(samples, seed=order + samples + 5)

    def build(self):
        pb = ProgramBuilder(self.name)
        order = self.order
        k = pb.global_array("k", order, float, init=self._k)
        c = pb.global_array("c", order, float, init=self._c)
        g = pb.global_array("g", order, float)
        x = pb.global_array("x", self.samples, float, init=self._input)
        y = pb.global_array("y", self.samples, float)

        with pb.function("main") as f:
            with f.loop(self.samples, name="n") as n:
                fwd = f.float_var("fwd")
                f.assign(fwd, x[n])
                # Forward recursion against the stored backward residuals.
                with f.loop(order, name="s") as s:
                    ks = f.float_var("ks")
                    gs = f.float_var("gs")
                    f.assign(ks, k[s])
                    f.assign(gs, g[s])
                    newf = f.float_var("newf")
                    f.assign(newf, fwd - ks * gs)
                    f.assign(g[s], gs + ks * newf)
                    f.assign(fwd, newf)
                # Output tap: weighted sum of the (updated) residuals.
                acc = f.float_var("acc")
                f.assign(acc, 0.0)
                with f.loop(order, name="t") as t:
                    f.assign(acc, acc + c[t] * g[t])
                # State shift: backward residuals move one stage down.
                with f.for_range(0, order - 1, name="m") as m:
                    f.assign(g[order - 1 - m], g[order - 2 - m])
                f.assign(g[0], fwd)
                f.assign(y[n], acc)
        return pb.build()

    def expected(self):
        g = [0.0] * self.order
        out = []
        for sample in self._input:
            fwd = sample
            for s in range(self.order):
                newf = fwd - self._k[s] * g[s]
                g[s] = g[s] + self._k[s] * newf
                fwd = newf
            acc = sum(self._c[t] * g[t] for t in range(self.order))
            for m in range(self.order - 1):
                g[self.order - 1 - m] = g[self.order - 2 - m]
            g[0] = fwd
            out.append(acc)
        return {"y": out}
