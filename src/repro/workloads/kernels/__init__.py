"""The 12 DSP kernels of paper Table 1.

Each of the six algorithms is instantiated at a large and a small size,
exactly as in the paper (e.g. ``fir_256_64`` is a 256-tap FIR filter
processing 64 samples; ``fir_32_1`` a 32-tap filter processing one).
"""

from repro.workloads.kernels.fir import Fir
from repro.workloads.kernels.fft import Fft
from repro.workloads.kernels.iir import Iir
from repro.workloads.kernels.latnrm import Latnrm
from repro.workloads.kernels.lmsfir import LmsFir
from repro.workloads.kernels.matmul import MatMul

__all__ = ["Fft", "Fir", "Iir", "Latnrm", "LmsFir", "MatMul"]
