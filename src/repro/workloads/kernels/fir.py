"""Finite Impulse Response filter kernels (fir_256_64, fir_32_1).

The paper's flagship example (Figure 1): the inner product loop loads one
element of the coefficient array and one element of the sample array per
iteration — with the two arrays in different banks, both loads issue in a
single long instruction.
"""

import numpy as np

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload


class Fir(Workload):
    """``taps``-tap FIR filter over ``samples`` output samples."""

    category = "kernel"

    def __init__(self, taps, samples):
        self.taps = taps
        self.samples = samples
        self.name = "fir_%d_%d" % (taps, samples)
        self._coeffs = data.fir_coefficients(taps)
        self._input = data.samples(taps + samples - 1, seed=taps + samples)

    def build(self):
        pb = ProgramBuilder(self.name)
        coeff = pb.global_array("coeff", self.taps, float, init=self._coeffs)
        x = pb.global_array("x", len(self._input), float, init=self._input)
        y = pb.global_array("y", self.samples, float)
        with pb.function("main") as f:
            with f.loop(self.samples, name="n") as n:
                acc = f.float_var("acc")
                f.assign(acc, 0.0)
                with f.loop(self.taps, name="k") as k:
                    f.assign(acc, acc + coeff[k] * x[n + k])
                f.assign(y[n], acc)
        return pb.build()

    def expected(self):
        coeffs = np.asarray(self._coeffs)
        x = np.asarray(self._input)
        y = [
            float(np.dot(coeffs, x[n : n + self.taps]))
            for n in range(self.samples)
        ]
        return {"y": y}
