"""Radix-2, in-place, decimation-in-time FFT kernels (fft_1024, fft_256).

Real and imaginary parts live in separate arrays (the standard DSP
layout), so each butterfly's real-part and imaginary-part loads can pair
across the banks; the bit-reversal permutation and the twiddle factors are
precomputed tables, as is conventional for on-chip DSP deployments.
"""

import numpy as np

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload


class Fft(Workload):
    """``n``-point radix-2 in-place DIT FFT."""

    category = "kernel"
    rtol = 1e-7
    atol = 1e-7

    def __init__(self, n):
        if n & (n - 1):
            raise ValueError("FFT size must be a power of two")
        self.n = n
        self.name = "fft_%d" % n
        self._re = data.samples(n, seed=n + 1)
        self._im = data.samples(n, seed=n + 2)

    def build(self):
        n = self.n
        stages = n.bit_length() - 1
        pb = ProgramBuilder(self.name)
        re = pb.global_array("re", n, float, init=self._re)
        im = pb.global_array("im", n, float, init=self._im)
        tw_re, tw_im = data.twiddles(n)
        wre = pb.global_array("wre", n // 2, float, init=tw_re)
        wim = pb.global_array("wim", n // 2, float, init=tw_im)
        brev = pb.global_array(
            "brev", n, int, init=data.bit_reversal_permutation(n)
        )

        with pb.function("main") as f:
            # Bit-reversal permutation (table-driven).
            with f.loop(n, name="i") as i:
                j = f.index_var("j")
                f.assign(j, brev[i])
                with f.if_(i < j):
                    tr = f.float_var()
                    ti = f.float_var()
                    f.assign(tr, re[i])
                    f.assign(ti, im[i])
                    f.assign(re[i], re[j])
                    f.assign(im[i], im[j])
                    f.assign(re[j], tr)
                    f.assign(im[j], ti)

            # Butterfly stages: group size m doubles each stage.
            m = f.index_var("m")          # group size
            half = f.index_var("half")    # m / 2
            stride = f.index_var("strd")  # twiddle stride = n / m
            groups = f.index_var("grp")   # number of groups = n / m
            f.assign(m, 2)
            f.assign(half, 1)
            f.assign(stride, n // 2)
            f.assign(groups, n // 2)
            with f.loop(stages):
                base = f.index_var("base")
                f.assign(base, 0)
                with f.loop(groups):
                    tw = f.index_var("tw")
                    f.assign(tw, 0)
                    with f.loop(half, name="j") as j:
                        top = f.index_var("top")
                        bot = f.index_var("bot")
                        f.assign(top, base + j)
                        f.assign(bot, top + half)
                        wr = f.float_var("wr")
                        wi = f.float_var("wi")
                        f.assign(wr, wre[tw])
                        f.assign(wi, wim[tw])
                        br = f.float_var()
                        bi = f.float_var()
                        f.assign(br, re[bot])
                        f.assign(bi, im[bot])
                        tr = f.float_var("tr")
                        ti = f.float_var("ti")
                        f.assign(tr, wr * br - wi * bi)
                        f.assign(ti, wr * bi + wi * br)
                        ar = f.float_var()
                        ai = f.float_var()
                        f.assign(ar, re[top])
                        f.assign(ai, im[top])
                        f.assign(re[bot], ar - tr)
                        f.assign(im[bot], ai - ti)
                        f.assign(re[top], ar + tr)
                        f.assign(im[top], ai + ti)
                        f.assign(tw, tw + stride)
                    f.assign(base, base + m)
                f.assign(half, m)
                f.assign(m, m * 2)
                f.assign(stride, stride / 2)
                f.assign(groups, groups / 2)
        return pb.build()

    def expected(self):
        spectrum = np.fft.fft(np.asarray(self._re) + 1j * np.asarray(self._im))
        return {
            "re": spectrum.real.tolist(),
            "im": spectrum.imag.tolist(),
        }
