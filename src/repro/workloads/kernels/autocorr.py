"""Paper-Figure-6 autocorrelation workload (``autocorr_24_4``).

The duplication case study of the paper: the autocorrelation inner loop
reads ``signal[n]`` and ``signal[n + m]`` every iteration, so the
``CB_DUP`` strategies keep a copy of ``signal`` in *both* banks to issue
the two loads in one cycle.  A pre-scale pass stores into ``signal``
first, so the duplicated updates also exercise the store-lock /
store-unlock window under interrupt (and fault) delivery.

This workload exists for the resilience campaign
(:mod:`repro.faults.campaign`): a kernel whose hot array is genuinely
duplicated, so dup-copy cross-checking has something to detect.  It is
deliberately *not* registered in the figure/table registry — the paper's
tables enumerate a fixed workload set whose golden numbers must not
drift.
"""

import numpy as np

from repro.frontend import ProgramBuilder
from repro.workloads.base import Workload


class Autocorr(Workload):
    """Autocorrelation of a ``frame``-sample signal over ``lags`` lags,
    with an in-place pre-scale pass over the signal."""

    category = "kernel"

    def __init__(self, frame=24, lags=4):
        self.frame = frame
        self.lags = lags
        self.name = "autocorr_%d_%d" % (frame, lags)
        self._signal = [
            float((7 * i) % 13) / 13.0 for i in range(frame + lags)
        ]

    def build(self):
        """Fresh module: pre-scale ``signal`` in place, then the Fig-6
        dual-read autocorrelation into ``R``."""
        pb = ProgramBuilder(self.name)
        signal = pb.global_array(
            "signal", self.frame + self.lags, float, init=self._signal
        )
        r = pb.global_array("R", self.lags, float)
        with pb.function("main") as f:
            with f.loop(self.frame + self.lags, name="i") as i:
                f.assign(signal[i], signal[i] * 0.5)
            with f.loop(self.lags, name="m") as m:
                acc = f.float_var("acc")
                f.assign(acc, 0.0)
                with f.loop(self.frame, name="n") as n:
                    f.assign(acc, acc + signal[n] * signal[n + m])
                f.assign(r[m], acc)
        return pb.build()

    def expected(self):
        """Reference model: the scaled signal and its autocorrelation."""
        scaled = np.asarray(self._signal) * 0.5
        r = [
            float(np.dot(scaled[: self.frame], scaled[m : m + self.frame]))
            for m in range(self.lags)
        ]
        return {"signal": [float(v) for v in scaled], "R": r}
