"""Infinite Impulse Response filter kernels (iir_4_64, iir_1_1).

A cascade of direct-form-II biquad sections.  Coefficients live in five
arrays and the two delay states per section in two more, so a single
section iteration issues nine memory operations with abundant pairing
opportunities for the allocation pass.
"""

import math

from repro.frontend import ProgramBuilder
from repro.workloads import data
from repro.workloads.base import Workload


def _stable_biquads(sections, seed):
    """Mildly-damped, stable biquad coefficient sets."""
    rng = data.rng(seed)
    coeffs = []
    for _ in range(sections):
        r = rng.uniform(0.4, 0.85)
        theta = rng.uniform(0.3, 2.7)
        a1 = -2 * r * math.cos(theta)
        a2 = r * r
        b0 = rng.uniform(0.5, 1.2)
        b1 = rng.uniform(-0.8, 0.8)
        b2 = rng.uniform(-0.6, 0.6)
        coeffs.append((b0, b1, b2, a1, a2))
    return coeffs


class Iir(Workload):
    """``sections``-biquad cascade over ``samples`` input samples."""

    category = "kernel"
    rtol = 1e-9

    def __init__(self, sections, samples):
        self.sections = sections
        self.samples = samples
        self.name = "iir_%d_%d" % (sections, samples)
        self._coeffs = _stable_biquads(sections, seed=sections * 31 + samples)
        self._input = data.samples(samples, seed=sections + samples)

    def build(self):
        pb = ProgramBuilder(self.name)
        s = self.sections
        # Denominator coefficients are stored negated, the standard DSP
        # idiom that turns the feedback path into multiply-accumulates.
        b0 = pb.global_array("b0", s, float, init=[c[0] for c in self._coeffs])
        b1 = pb.global_array("b1", s, float, init=[c[1] for c in self._coeffs])
        b2 = pb.global_array("b2", s, float, init=[c[2] for c in self._coeffs])
        na1 = pb.global_array("na1", s, float, init=[-c[3] for c in self._coeffs])
        na2 = pb.global_array("na2", s, float, init=[-c[4] for c in self._coeffs])
        d1 = pb.global_array("d1", s, float)
        d2 = pb.global_array("d2", s, float)
        x = pb.global_array("x", self.samples, float, init=self._input)
        y = pb.global_array("y", self.samples, float)

        with pb.function("main") as f:
            with f.loop(self.samples, name="n") as n:
                v = f.float_var("v")
                f.assign(v, x[n])
                with f.loop(s, name="sec") as sec:
                    s1 = f.float_var("s1")
                    s2 = f.float_var("s2")
                    f.assign(s1, d1[sec])
                    f.assign(s2, d2[sec])
                    # Feedback chain: w = v + (-a1)*s1 + (-a2)*s2
                    w = f.float_var("w")
                    f.assign(w, v)
                    f.assign(w, w + na1[sec] * s1)
                    f.assign(w, w + na2[sec] * s2)
                    # Feedforward tail runs in parallel with the feedback
                    # chain: t = b1*s1 + b2*s2, then t += b0*w.
                    t = f.float_var("t")
                    f.assign(t, b1[sec] * s1)
                    f.assign(t, t + b2[sec] * s2)
                    f.assign(t, t + b0[sec] * w)
                    f.assign(d2[sec], s1)
                    f.assign(d1[sec], w)
                    f.assign(v, t)
                f.assign(y[n], v)
        return pb.build()

    def expected(self):
        d1 = [0.0] * self.sections
        d2 = [0.0] * self.sections
        out = []
        for sample in self._input:
            v = sample
            for s in range(self.sections):
                b0, b1, b2, a1, a2 = self._coeffs[s]
                w = v - a1 * d1[s] - a2 * d2[s]
                v = b0 * w + b1 * d1[s] + b2 * d2[s]
                d2[s] = d1[s]
                d1[s] = w
            out.append(v)
        return {"y": out}
